//! The BSP vertex program driving a PSgL run (Section 6).
//!
//! Both phases of the framework live in a single vertex program, exactly as
//! in the paper's Giraph implementation: superstep 0 executes the
//! *initialization phase* (each data vertex creates the initial Gpsi
//! mapping the selected initial pattern vertex to itself), and every later
//! superstep executes the *expansion phase* (Algorithm 1) on the Gpsis that
//! arrived as messages.

use crate::checkpoint::{
    pattern_hash, Checkpoint, CheckpointError, CheckpointGuard, CheckpointShard, GpsiSpillCodec,
    HarvestCheckpoint, WorkerCheckpoint,
};
use crate::config::PsglConfig;
use crate::distribute::Distributor;
use crate::expand::{expand_gpsi, ExpandLimits, ExpandOutcome, ExpandScratch};
use crate::gpsi::Gpsi;
use crate::init_vertex::SelectionRule;
use crate::shared::{PsglError, PsglShared};
use crate::stats::{ExpandStats, RunStats};
use psgl_bsp::{
    BspConfig, CancelReason, CancelToken, CarriedCounters, Chunk, Context, EngineMetrics, Exchange,
    FrontierSink, ResumePoint, RunControl, RunOutcome, SpillControl, SpillStore, VertexProgram,
};
use psgl_graph::hash::hash_u64;
use psgl_graph::partition::HashPartitioner;
use psgl_graph::VertexId;
use psgl_pattern::Pattern;

/// Result of a listing run.
#[derive(Clone, Debug)]
pub struct ListingResult {
    /// Number of subgraph instances found.
    pub instance_count: u64,
    /// The instances themselves (pattern-vertex order), present iff
    /// [`PsglConfig::collect_instances`]; sorted for deterministic
    /// comparison.
    pub instances: Option<Vec<Vec<VertexId>>>,
    /// Run statistics (Gpsi counts, pruning breakdown, per-worker loads).
    pub stats: RunStats,
    /// The initial pattern vertex that was used.
    pub init_vertex: psgl_pattern::PatternVertex,
    /// How it was selected.
    pub selection_rule: SelectionRule,
}

/// What each worker keeps of the instances it finds.
enum Harvest {
    /// Count only (the paper's default output: occurrence numbers).
    CountOnly,
    /// Collect the vertex tuples ([`PsglConfig::collect_instances`]).
    Instances(Vec<Vec<VertexId>>),
    /// Per-data-vertex participation counts (local motif counts).
    PerVertex(Vec<u64>),
}

/// Per-worker mutable state.
pub struct WorkerState {
    distributor: Distributor,
    stats: ExpandStats,
    harvest: Harvest,
    /// Reusable expansion-kernel buffers; retained across supersteps so
    /// steady-state expansion allocates nothing.
    scratch: ExpandScratch,
    /// Reusable outbox for freshly generated Gpsis, drained into the
    /// engine's send path after every expansion.
    out: Vec<Gpsi>,
    /// Messages this worker has emitted in the current superstep; compared
    /// against the Gpsi budget *during* the superstep so a simulated OOM
    /// aborts before the outboxes exhaust real memory.
    emitted_this_superstep: u64,
    /// Superstep `emitted_this_superstep` refers to.
    emitted_superstep: u32,
    /// Set when a fan-out limit trips; the worker drains remaining
    /// messages without expanding (simulated OOM abort).
    failed: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum HarvestMode {
    CountOnly,
    Instances,
    PerVertex,
}

struct PsglProgram<'a> {
    shared: &'a PsglShared<'a>,
    config: &'a PsglConfig,
    limits: ExpandLimits,
    harvest_mode: HarvestMode,
    /// With checkpointing enabled the per-worker early budget abort is
    /// deferred to the engine's barrier check, which captures the whole
    /// over-budget frontier as a resumable [`Checkpoint`] instead of
    /// discarding the run.
    defer_budget: bool,
}

impl VertexProgram for PsglProgram<'_> {
    type Message = Gpsi;
    type WorkerState = WorkerState;
    type Aggregate = ();

    fn create_worker_state(&self, worker: usize) -> WorkerState {
        WorkerState {
            distributor: Distributor::new(
                self.config.strategy,
                self.config.workers,
                hash_u64(self.config.seed ^ (worker as u64).wrapping_mul(0x9e37)),
            ),
            stats: ExpandStats::default(),
            harvest: match self.harvest_mode {
                HarvestMode::CountOnly => Harvest::CountOnly,
                HarvestMode::Instances => Harvest::Instances(Vec::new()),
                HarvestMode::PerVertex => {
                    Harvest::PerVertex(vec![0; self.shared.graph.num_vertices()])
                }
            },
            scratch: ExpandScratch::new(),
            out: Vec::new(),
            emitted_this_superstep: 0,
            emitted_superstep: 0,
            failed: false,
        }
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, Gpsi>,
        state: &mut WorkerState,
        vertex: VertexId,
        messages: &mut Vec<Gpsi>,
    ) {
        if state.failed {
            return; // drain mode after a simulated OOM
        }
        if ctx.superstep() == 0 {
            // Initialization phase: one Gpsi per data vertex that passes
            // the degree prune for the initial pattern vertex.
            let init = self.shared.init_vertex;
            if self.shared.graph.degree(vertex) >= self.shared.pattern.degree(init)
                && self.shared.label_ok(init, vertex)
            {
                ctx.add_cost(1);
                ctx.send(vertex, Gpsi::initial(init, vertex));
            }
            return;
        }
        if state.emitted_superstep != ctx.superstep() {
            state.emitted_superstep = ctx.superstep();
            state.emitted_this_superstep = 0;
        }
        let WorkerState {
            distributor,
            stats,
            harvest,
            scratch,
            out,
            emitted_this_superstep,
            failed,
            ..
        } = state;
        let np = self.shared.pattern.num_vertices();
        for gpsi in messages.drain(..) {
            // A FanoutExceeded early-return below can leave stale Gpsis
            // behind; clearing here keeps the reused buffer safe.
            out.clear();
            let before = stats.cost;
            let outcome = expand_gpsi(
                self.shared,
                gpsi,
                scratch,
                distributor,
                ctx.partitioner(),
                &self.limits,
                out,
                &mut |done| match harvest {
                    Harvest::CountOnly => {}
                    Harvest::Instances(buf) => buf.push(done.instance(np)),
                    Harvest::PerVertex(counts) => {
                        for &vd in done.mapping(np) {
                            counts[vd as usize] += 1;
                        }
                    }
                },
                stats,
            );
            ctx.add_cost(stats.cost - before);
            if outcome == ExpandOutcome::FanoutExceeded {
                *failed = true;
                return;
            }
            *emitted_this_superstep += out.len() as u64;
            if let Some(budget) = self.config.gpsi_budget {
                // One worker's single-superstep output alone exceeding the
                // global budget guarantees the barrier check would fail;
                // abort now instead of materializing the rest — unless the
                // run checkpoints, where the barrier check must see the
                // complete frontier to capture it.
                if !self.defer_budget && *emitted_this_superstep > budget {
                    *failed = true;
                    return;
                }
            }
            for g in out.drain(..) {
                let dest = g.map(g.expanding()).expect("expanding vertex is mapped");
                ctx.send(dest, g);
            }
        }
    }
}

/// Runs a full PSgL listing of `pattern` in `graph`.
///
/// Performs the offline preparation (ordering, automorphism breaking, edge
/// index, initial-vertex selection) and then the BSP run. Use
/// [`list_subgraphs_prepared`] to amortize preparation across several runs.
pub fn list_subgraphs(
    graph: &psgl_graph::DataGraph,
    pattern: &Pattern,
    config: &PsglConfig,
) -> Result<ListingResult, PsglError> {
    let shared = PsglShared::prepare(graph, pattern, config)?;
    list_subgraphs_prepared(&shared, config)
}

/// Hooks the deterministic simulation harness (`crates/sim`) uses to drive
/// a listing run through a custom scheduler, vertex placement, and the
/// engine's chaos knobs. The default value reproduces the production path
/// bit-for-bit.
#[derive(Default)]
pub struct RunnerHooks<'a> {
    /// Executor driving the BSP supersteps; `None` uses the production
    /// [`psgl_bsp::ThreadExecutor`].
    pub executor: Option<&'a dyn psgl_bsp::Executor>,
    /// Vertex-placement override (e.g. a skewed partitioner); `None`
    /// derives the salted hash partitioner from the config seed.
    pub partitioner: Option<HashPartitioner>,
    /// Cap on live message chunks ([`BspConfig::max_live_chunks`]).
    pub max_live_chunks: Option<u64>,
    /// Per-worker, per-superstep steal cap ([`BspConfig::steal_budget`]).
    pub steal_budget: Option<u64>,
    /// Seeded exchange reordering ([`BspConfig::exchange_shuffle_seed`]).
    pub exchange_shuffle_seed: Option<u64>,
    /// Message-chunk granularity override ([`BspConfig::chunk_capacity`]).
    /// Smaller chunks give eviction (and stealing) finer granularity;
    /// memory-bounded runs pair this with [`RunnerHooks::max_live_chunks`].
    pub chunk_capacity: Option<usize>,
    /// Disk spill tier override; takes precedence over
    /// [`PsglConfig::spill`] so the chaos harness can inject disk-pressure
    /// faults per scenario.
    pub spill: Option<psgl_bsp::SpillConfig>,
    /// Structured-trace sink threaded into the engine (superstep events)
    /// and the runner (run lifecycle, spill-dir cleanup). `None` traces
    /// nothing; the service passes the process tracer, the sim harness a
    /// seeded one.
    pub tracer: Option<&'a psgl_obs::Tracer>,
}

/// Runs the BSP phase against an already-prepared shared context.
pub fn list_subgraphs_prepared(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
) -> Result<ListingResult, PsglError> {
    list_subgraphs_prepared_with(shared, config, &RunnerHooks::default())
}

/// [`list_subgraphs_prepared`] with explicit [`RunnerHooks`] — the entry
/// point the simulation harness uses to run the *real* expansion pipeline
/// under an adversarial, deterministic schedule.
pub fn list_subgraphs_prepared_with(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    hooks: &RunnerHooks<'_>,
) -> Result<ListingResult, PsglError> {
    let mode =
        if config.collect_instances { HarvestMode::Instances } else { HarvestMode::CountOnly };
    match run_engine(shared, config, mode, hooks, RunControls::default())? {
        EngineEnd::Complete(result, worker_states) => {
            Ok(attach_instances(result, worker_states, config))
        }
        // No cancel token, no checkpointing: nothing can cancel the run.
        EngineEnd::Cancelled(_) => unreachable!("run without controls cannot be cancelled"),
    }
}

/// Cancellation / checkpoint / resume inputs for
/// [`list_subgraphs_resumable`]. The default reproduces
/// [`list_subgraphs_prepared_with`] exactly.
#[derive(Default)]
pub struct RunControls<'a> {
    /// Cancellation token polled at every superstep barrier and every few
    /// message batches inside expansion.
    pub cancel: Option<&'a CancelToken>,
    /// Capture a [`Checkpoint`] when a soft cancel (deadline, superstep
    /// deadline, or Gpsi budget) fires at a barrier.
    pub checkpoint: bool,
    /// Restart from a previously captured checkpoint instead of
    /// superstep 0. The checkpoint's guard must match this run's graph,
    /// pattern, and configuration exactly.
    pub resume: Option<Checkpoint>,
    /// Distributed-runtime hookup: run this engine instance as one member
    /// of a cluster, hosting only a subset of the global partitions. See
    /// [`ClusterControls`].
    pub cluster: Option<ClusterControls<'a>>,
}

/// Hooks that turn one engine instance into a cluster member: a remote
/// [`Exchange`] carries the message plane, an optional [`ShardSink`]
/// streams superstep-boundary checkpoint shards out (to the coordinator),
/// and `resume_shards` restarts the member from a previously captured
/// shard set after a peer failure.
///
/// In cluster mode [`RunControls::checkpoint`] is ignored: checkpointing
/// is coordinator-directed (via
/// [`ExchangeDirective::CheckpointAndContinue`](psgl_bsp::ExchangeDirective))
/// and flows through the shard sink, never through an in-engine
/// [`Checkpoint`] capture, because no single member sees the whole run.
pub struct ClusterControls<'a> {
    /// The remote exchange: ships non-local outboxes to peers, runs the
    /// coordinator barrier, and reports the global in-flight count.
    pub exchange: &'a dyn Exchange<Gpsi>,
    /// Receives one [`CheckpointShard`] per local partition whenever the
    /// coordinator directs a checkpoint.
    pub shard_sink: Option<&'a dyn ShardSink>,
    /// Resume this member from a shard set (one shard per local partition,
    /// any order) instead of superstep 0.
    pub resume_shards: Option<Vec<CheckpointShard>>,
}

/// Receives superstep-boundary checkpoint shards from a cluster member —
/// one per local partition, captured at the same barrier.
pub trait ShardSink: Sync {
    /// Consumes one barrier's shard set.
    fn capture(&self, shards: Vec<CheckpointShard>);
}

/// A run ended early by its cancel token (or budget, with checkpointing).
pub struct CancelledListing {
    /// Why the run stopped.
    pub reason: CancelReason,
    /// The superstep the run stopped at (= the resume superstep when a
    /// checkpoint was captured).
    pub superstep: u32,
    /// Partial results: instances found and statistics accumulated before
    /// cancellation. On a hard cancel the aborted superstep's counters
    /// are partially included; on a checkpointed cancel they are exact.
    pub partial: ListingResult,
    /// The resume checkpoint — present only for soft cancels with
    /// [`RunControls::checkpoint`] set.
    pub checkpoint: Option<Checkpoint>,
}

/// Outcome of a resumable listing run.
//
// The variants are deliberately asymmetric in size: this is a transient
// return value consumed immediately by a match, never stored, and boxing
// the common Complete arm would tax every uncancelled run.
#[allow(clippy::large_enum_variant)]
pub enum ListingEnd {
    /// The run finished; results are exact.
    Complete(ListingResult),
    /// The run was cancelled; see [`CancelledListing`].
    Cancelled(Box<CancelledListing>),
}

/// [`list_subgraphs_prepared_with`] plus cooperative cancellation,
/// superstep-boundary checkpointing, and exact resume.
///
/// Resuming from a checkpoint continues the run *bit-identically*: the
/// distributor RNG streams, workload views, expansion counters, and the
/// undelivered frontier are all restored, so the final counts, instances,
/// and deterministic metrics equal an uninterrupted run's.
pub fn list_subgraphs_resumable(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    hooks: &RunnerHooks<'_>,
    controls: RunControls<'_>,
) -> Result<ListingEnd, PsglError> {
    let mode =
        if config.collect_instances { HarvestMode::Instances } else { HarvestMode::CountOnly };
    match run_engine(shared, config, mode, hooks, controls)? {
        EngineEnd::Complete(result, worker_states) => {
            Ok(ListingEnd::Complete(attach_instances(result, worker_states, config)))
        }
        EngineEnd::Cancelled(c) => Ok(ListingEnd::Cancelled(c)),
    }
}

/// Outcome of one bounded slice of a resumable run — see
/// [`list_subgraphs_slice`].
#[allow(clippy::large_enum_variant)]
pub enum SliceEnd {
    /// The run finished inside the slice; results are exact and final.
    Complete(ListingResult),
    /// The slice budget expired at a barrier. Resume the next slice by
    /// passing `checkpoint` back in; counts and instances continue
    /// bit-identically to an uninterrupted run.
    Preempted {
        /// The superstep the next slice resumes at.
        superstep: u32,
        /// Cumulative partial results (exact: preemption acts at a
        /// barrier, never mid-superstep).
        partial: ListingResult,
        /// The resume point. Its worker harvests carry every instance
        /// collected so far; [`Checkpoint::drain_instances`] moves them
        /// out for streaming without disturbing counts.
        checkpoint: Box<Checkpoint>,
    },
    /// Another trigger (explicit cancel, deadline, budget) beat the slice
    /// barrier; see [`CancelledListing`].
    Cancelled(Box<CancelledListing>),
}

/// Runs at most `slice_supersteps` supersteps of a (possibly resumed)
/// listing run, yielding at the next barrier with a resume checkpoint —
/// the preemptive scheduler's unit of work.
///
/// Arms `cancel`'s preemption barrier at `resume superstep +
/// slice_supersteps`, runs [`list_subgraphs_resumable`], and disarms the
/// barrier before returning. The preempted frontier is captured
/// regardless of `controls.checkpoint` semantics for deadlines: the
/// `checkpoint` argument here only controls whether *deadline/budget*
/// cancels are soft (checkpointed) or hard, exactly as in
/// [`RunControls`]. Slicing never changes the run's results: resuming
/// from the returned checkpoint continues bit-identically.
pub fn list_subgraphs_slice(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    hooks: &RunnerHooks<'_>,
    cancel: &CancelToken,
    checkpoint: bool,
    resume: Option<Checkpoint>,
    slice_supersteps: u32,
) -> Result<SliceEnd, PsglError> {
    let base = resume.as_ref().map_or(0, |cp| cp.superstep);
    cancel.set_preempt_barrier(base.saturating_add(slice_supersteps.max(1)));
    let controls = RunControls { cancel: Some(cancel), checkpoint, resume, cluster: None };
    let end = list_subgraphs_resumable(shared, config, hooks, controls);
    cancel.clear_preempt_barrier();
    match end? {
        ListingEnd::Complete(result) => Ok(SliceEnd::Complete(result)),
        ListingEnd::Cancelled(c) if c.reason == CancelReason::Preempted => {
            let c = *c;
            let checkpoint = c.checkpoint.expect("a preempted run always captures its frontier");
            Ok(SliceEnd::Preempted {
                superstep: c.superstep,
                partial: c.partial,
                checkpoint: Box::new(checkpoint),
            })
        }
        ListingEnd::Cancelled(c) => Ok(SliceEnd::Cancelled(c)),
    }
}

/// Moves collected instances out of the worker harvests into the result
/// (sorted for deterministic comparison).
fn attach_instances(
    mut result: ListingResult,
    worker_states: Vec<WorkerState>,
    config: &PsglConfig,
) -> ListingResult {
    if config.collect_instances {
        let mut buf = Vec::new();
        for ws in worker_states {
            if let Harvest::Instances(mut found) = ws.harvest {
                buf.append(&mut found);
            }
        }
        buf.sort_unstable();
        result.instances = Some(buf);
    }
    result
}

/// Runs the BSP expansion phase over an explicit seed frontier instead of
/// the initialization superstep — the incremental-listing path of
/// `psgl-delta`.
///
/// Each seed is a partially expanded [`Gpsi`] (typically two mapped
/// vertices binding one changed data edge, with that pattern edge already
/// verified); the engine starts directly at superstep 1 with the seeds as
/// the undelivered frontier, routed to the partition owning each seed's
/// expanding vertex. Expansion from a seed is exact — identical pruning,
/// ordering, and verification to a full run — so the instances found are
/// exactly the completions of the given seeds.
///
/// The caller is responsible for seed validity: every already-mapped pair
/// must satisfy the partial order and the seed's expanding vertex must be
/// mapped. An empty seed set returns an empty, zero-superstep result.
pub fn list_subgraphs_seeded(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    hooks: &RunnerHooks<'_>,
    seeds: Vec<Gpsi>,
) -> Result<ListingResult, PsglError> {
    let mode =
        if config.collect_instances { HarvestMode::Instances } else { HarvestMode::CountOnly };
    match run_engine_seeded(shared, config, mode, hooks, RunControls::default(), Some(seeds))? {
        EngineEnd::Complete(result, worker_states) => {
            Ok(attach_instances(result, worker_states, config))
        }
        EngineEnd::Cancelled(_) => unreachable!("run without controls cannot be cancelled"),
    }
}

/// Lists all *label-consistent* instances of `pattern` in `graph`
/// (Section 2's subgraph-matching generalization: each pattern vertex may
/// only map to data vertices carrying the same label). With uniform labels
/// this equals [`list_subgraphs`].
pub fn list_subgraphs_labeled(
    graph: &psgl_graph::DataGraph,
    pattern: &Pattern,
    data_labels: Vec<psgl_pattern::labeled::Label>,
    pattern_labels: Vec<psgl_pattern::labeled::Label>,
    config: &PsglConfig,
) -> Result<ListingResult, PsglError> {
    let shared = PsglShared::prepare_labeled(graph, pattern, config, data_labels, pattern_labels)?;
    list_subgraphs_prepared(&shared, config)
}

/// Counts, for every data vertex, the number of subgraph instances it
/// participates in — e.g. with the triangle pattern this yields local
/// triangle counts, the ingredient of per-vertex clustering coefficients
/// (Section 1's motivating application).
///
/// An instance containing vertex `v` in `k` positions contributes `k`
/// (positions are distinct, so `k` is 0 or 1); the counts therefore sum to
/// `instance_count * |Vp|`.
pub fn count_per_vertex(
    graph: &psgl_graph::DataGraph,
    pattern: &Pattern,
    config: &PsglConfig,
) -> Result<(Vec<u64>, ListingResult), PsglError> {
    let shared = PsglShared::prepare(graph, pattern, config)?;
    let end = run_engine(
        &shared,
        config,
        HarvestMode::PerVertex,
        &RunnerHooks::default(),
        RunControls::default(),
    )?;
    let EngineEnd::Complete(result, worker_states) = end else {
        unreachable!("run without controls cannot be cancelled")
    };
    let mut totals = vec![0u64; graph.num_vertices()];
    for ws in worker_states {
        if let Harvest::PerVertex(counts) = ws.harvest {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
    }
    Ok((totals, result))
}

/// Internal outcome of the engine driver.
#[allow(clippy::large_enum_variant)] // transient return value, see ListingEnd
enum EngineEnd {
    Complete(ListingResult, Vec<WorkerState>),
    Cancelled(Box<CancelledListing>),
}

/// The checkpoint guard pinning this run's inputs.
fn guard_of(shared: &PsglShared<'_>, config: &PsglConfig, mode: HarvestMode) -> CheckpointGuard {
    CheckpointGuard {
        graph_hash: shared.graph.content_hash(),
        workers: config.workers as u32,
        seed: config.seed,
        strategy: config.strategy,
        pattern_hash: pattern_hash(&shared.pattern),
        init_vertex: shared.init_vertex,
        harvest_mode: match mode {
            HarvestMode::CountOnly => 0,
            HarvestMode::Instances => 1,
            HarvestMode::PerVertex => 2,
        },
    }
}

/// Captures one worker's mutable state for a checkpoint.
fn snapshot_worker(ws: &WorkerState) -> WorkerCheckpoint {
    WorkerCheckpoint {
        distributor: ws.distributor.snapshot(),
        stats: ws.stats,
        emitted_this_superstep: ws.emitted_this_superstep,
        emitted_superstep: ws.emitted_superstep,
        failed: ws.failed,
        harvest: match &ws.harvest {
            Harvest::CountOnly => HarvestCheckpoint::CountOnly,
            Harvest::Instances(buf) => HarvestCheckpoint::Instances(buf.clone()),
            Harvest::PerVertex(counts) => HarvestCheckpoint::PerVertex(counts.clone()),
        },
    }
}

/// Rebuilds the engine's resume point from a validated checkpoint.
fn restore_resume_point(config: &PsglConfig, cp: Checkpoint) -> ResumePoint<Gpsi, WorkerState, ()> {
    let worker_states = cp
        .workers
        .into_iter()
        .map(|wc| WorkerState {
            distributor: Distributor::from_snapshot(config.strategy, wc.distributor),
            stats: wc.stats,
            harvest: match wc.harvest {
                HarvestCheckpoint::CountOnly => Harvest::CountOnly,
                HarvestCheckpoint::Instances(buf) => Harvest::Instances(buf),
                HarvestCheckpoint::PerVertex(counts) => Harvest::PerVertex(counts),
            },
            scratch: ExpandScratch::new(),
            out: Vec::new(),
            emitted_this_superstep: wc.emitted_this_superstep,
            emitted_superstep: wc.emitted_superstep,
            failed: wc.failed,
        })
        .collect();
    ResumePoint {
        superstep: cp.superstep,
        frontier: cp.frontier,
        worker_states,
        aggregate: (),
        prior_supersteps: cp.prior_supersteps,
        carried: cp.carried,
    }
}

/// Adapts the engine's [`FrontierSink`] callback (local states + inboxes
/// at a checkpoint barrier) into per-partition [`CheckpointShard`]s for
/// the cluster's [`ShardSink`].
struct EngineShardSink<'a> {
    sink: &'a dyn ShardSink,
    guard: CheckpointGuard,
    /// Global partition ids, in local slot order.
    partitions: Vec<usize>,
}

impl FrontierSink<Gpsi, WorkerState> for EngineShardSink<'_> {
    fn capture(&self, superstep: u32, states: &[WorkerState], frontier: &[Vec<Chunk<Gpsi>>]) {
        let shards = self
            .partitions
            .iter()
            .zip(states.iter().zip(frontier))
            .map(|(&partition, (ws, inbox))| CheckpointShard {
                guard: self.guard,
                partition: partition as u32,
                superstep,
                worker: snapshot_worker(ws),
                frontier: inbox.iter().flat_map(|c| c.iter().copied()).collect(),
            })
            .collect();
        self.sink.capture(shards);
    }
}

/// Rebuilds a cluster member's resume point from its shard set: one shard
/// per hosted partition, all captured at the same superstep barrier and
/// guarded against this exact run.
fn restore_from_shards(
    config: &PsglConfig,
    guard: &CheckpointGuard,
    shards: Vec<CheckpointShard>,
    locals: &[usize],
) -> Result<ResumePoint<Gpsi, WorkerState, ()>, PsglError> {
    let bad = |m: String| PsglError::Checkpoint(CheckpointError { message: m });
    if shards.len() != locals.len() {
        return Err(bad(format!(
            "{} resume shards for {} local partitions",
            shards.len(),
            locals.len()
        )));
    }
    let mut by_partition: Vec<Option<CheckpointShard>> = Vec::new();
    by_partition.resize_with(guard.workers as usize, || None);
    let superstep = shards.first().map_or(0, |s| s.superstep);
    for shard in shards {
        if shard.guard != *guard {
            return Err(bad("resume shard was captured from a different run".into()));
        }
        if shard.superstep != superstep {
            return Err(bad(format!(
                "resume shards span supersteps {superstep} and {}",
                shard.superstep
            )));
        }
        let slot = shard.partition as usize;
        if by_partition[slot].replace(shard).is_some() {
            return Err(bad(format!("duplicate resume shard for partition {slot}")));
        }
    }
    let mut worker_states = Vec::with_capacity(locals.len());
    let mut frontier = Vec::with_capacity(locals.len());
    for &p in locals {
        let Some(shard) = by_partition[p].take() else {
            return Err(bad(format!("missing resume shard for partition {p}")));
        };
        let wc = shard.worker;
        worker_states.push(WorkerState {
            distributor: Distributor::from_snapshot(config.strategy, wc.distributor),
            stats: wc.stats,
            harvest: match wc.harvest {
                HarvestCheckpoint::CountOnly => Harvest::CountOnly,
                HarvestCheckpoint::Instances(buf) => Harvest::Instances(buf),
                HarvestCheckpoint::PerVertex(counts) => Harvest::PerVertex(counts),
            },
            scratch: ExpandScratch::new(),
            out: Vec::new(),
            emitted_this_superstep: wc.emitted_this_superstep,
            emitted_superstep: wc.emitted_superstep,
            failed: wc.failed,
        });
        frontier.push(shard.frontier);
    }
    Ok(ResumePoint {
        superstep,
        frontier,
        worker_states,
        aggregate: (),
        // The coordinator owns the global superstep history; a member's
        // metrics restart at the resume superstep.
        prior_supersteps: Vec::new(),
        carried: CarriedCounters::default(),
    })
}

/// Assembles [`RunStats`] from merged expansion counters and engine
/// metrics. Public so the cluster coordinator can aggregate worker
/// metrics into the same stats shape a single-process run reports.
pub fn assemble_run_stats(expand: ExpandStats, metrics: &EngineMetrics) -> RunStats {
    RunStats {
        expand,
        per_worker_cost: metrics.per_worker_cost(),
        simulated_makespan: metrics.simulated_makespan(),
        supersteps: metrics.superstep_count(),
        messages: metrics.total_messages(),
        messages_local: metrics.total_local_delivered(),
        chunks_stolen: metrics.total_chunks_stolen(),
        bytes_exchanged: metrics.total_bytes_exchanged(),
        messages_out_per_superstep: metrics.supersteps.iter().map(|s| s.messages_out()).collect(),
        messages_in_per_superstep: metrics
            .supersteps
            .iter()
            .map(|s| s.workers.iter().map(|w| w.messages_in).sum())
            .collect(),
        pool_exhausted: metrics.pool_exhausted,
        chunks_outstanding: metrics.chunks_outstanding,
        chunks_live_peak: metrics.chunks_live_peak,
        spill_chunks: metrics.spill_chunks,
        spill_bytes: metrics.spill_bytes,
        spill_stall_ms: metrics.spill_stall_nanos / 1_000_000,
        readmitted_chunks: metrics.readmitted_chunks,
        wall_time: metrics.wall_time,
        cost_imbalance: metrics.cost_imbalance(),
        frames_sent: metrics.total_frames_sent(),
        frames_received: metrics.total_frames_received(),
        wire_bytes_sent: metrics.total_wire_bytes_sent(),
        wire_bytes_received: metrics.total_wire_bytes_received(),
        barrier_wait_nanos: metrics.total_barrier_wait_nanos(),
        barrier_wait_per_superstep: metrics.barrier_wait_per_superstep(),
        compute_nanos_per_superstep: metrics.compute_nanos_per_superstep(),
        exchange_nanos_per_superstep: metrics.exchange_nanos_per_superstep(),
        spill_stall_per_superstep: metrics.spill_stall_per_superstep(),
        spill_write_failures: metrics.spill_write_failures,
    }
}

/// Assembles the result skeleton from merged counters and engine metrics.
fn assemble_listing(
    shared: &PsglShared<'_>,
    expand: ExpandStats,
    metrics: &EngineMetrics,
) -> ListingResult {
    ListingResult {
        instance_count: expand.results,
        instances: None,
        stats: assemble_run_stats(expand, metrics),
        init_vertex: shared.init_vertex,
        selection_rule: shared.selection_rule,
    }
}

/// Shared engine driver: runs the BSP phase and assembles the result
/// skeleton; harvest-specific data is extracted by the callers from the
/// returned worker states.
fn run_engine(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    harvest_mode: HarvestMode,
    hooks: &RunnerHooks<'_>,
    controls: RunControls<'_>,
) -> Result<EngineEnd, PsglError> {
    run_engine_seeded(shared, config, harvest_mode, hooks, controls, None)
}

/// [`run_engine`] with an optional explicit seed frontier: the engine
/// skips the initialization superstep and starts at superstep 1 with the
/// seeds as the undelivered frontier (fresh worker states, seeds routed by
/// the partition of each seed's expanding vertex). Mutually exclusive with
/// resuming from a checkpoint.
fn run_engine_seeded(
    shared: &PsglShared<'_>,
    config: &PsglConfig,
    harvest_mode: HarvestMode,
    hooks: &RunnerHooks<'_>,
    controls: RunControls<'_>,
    seeds: Option<Vec<Gpsi>>,
) -> Result<EngineEnd, PsglError> {
    let partitioner = hooks
        .partitioner
        .unwrap_or_else(|| HashPartitioner::with_salt(config.workers, hash_u64(config.seed)));
    let program = PsglProgram {
        shared,
        config,
        limits: ExpandLimits { max_fanout: config.max_fanout },
        harvest_mode,
        defer_budget: controls.checkpoint && config.gpsi_budget.is_some(),
    };
    let mut bsp_config = BspConfig {
        max_supersteps: config.max_supersteps,
        // The per-worker budget also bounds the global in-flight volume.
        message_budget: config.gpsi_budget.map(|b| b.saturating_mul(config.workers as u64)),
        steal: config.steal,
        max_live_chunks: hooks.max_live_chunks,
        steal_budget: hooks.steal_budget,
        exchange_shuffle_seed: hooks.exchange_shuffle_seed,
        ..Default::default()
    };
    if let Some(capacity) = hooks.chunk_capacity {
        bsp_config.chunk_capacity = capacity;
    }
    let executor: &dyn psgl_bsp::Executor = hooks.executor.unwrap_or(&psgl_bsp::ThreadExecutor);
    let guard = guard_of(shared, config, harvest_mode);
    let RunControls { cancel, checkpoint, resume, cluster } = controls;
    let (cluster_exchange, cluster_sink, resume_shards) = match cluster {
        Some(cl) => (Some(cl.exchange), cl.shard_sink, cl.resume_shards),
        None => (None, None, None),
    };
    let resume = if let Some(seeds) = seeds {
        debug_assert!(resume.is_none(), "seed frontier and checkpoint resume are exclusive");
        let worker_states = (0..config.workers).map(|w| program.create_worker_state(w)).collect();
        let mut frontier: Vec<Vec<(VertexId, Gpsi)>> = vec![Vec::new(); config.workers];
        for g in seeds {
            let dest = g.map(g.expanding()).expect("seed expanding vertex is mapped");
            frontier[partitioner.owner(dest)].push((dest, g));
        }
        Some(ResumePoint {
            superstep: 1,
            frontier,
            worker_states,
            aggregate: (),
            prior_supersteps: Vec::new(),
            carried: CarriedCounters::default(),
        })
    } else if let Some(shards) = resume_shards {
        let exchange = cluster_exchange.expect("resume_shards live inside ClusterControls");
        Some(restore_from_shards(config, &guard, shards, &exchange.local_partitions())?)
    } else {
        match resume {
            Some(cp) => {
                cp.validate(&guard)?;
                Some(restore_resume_point(config, cp))
            }
            None => None,
        }
    };
    let shard_sink = cluster_exchange.and_then(|exchange| {
        cluster_sink.map(|sink| EngineShardSink {
            sink,
            guard,
            partitions: exchange.local_partitions(),
        })
    });
    // The spill tier. Hooks override config so the chaos harness can
    // inject disk-pressure faults per scenario; disabled under a cluster
    // exchange, where the message plane owns inter-worker buffering. The
    // store created here owns the per-run spill directory: dropping this
    // frame — clean finish, cancel, preempt, `?` error, panic unwind —
    // deletes every blob.
    let spill_config = hooks.spill.as_ref().or(config.spill.as_ref());
    let spill_store = match spill_config {
        Some(sc) if cluster_exchange.is_none() => {
            Some(SpillStore::create(sc).map_err(|error| {
                PsglError::Engine(psgl_bsp::BspError::Spill { superstep: 0, error })
            })?)
        }
        _ => None,
    };
    let spill_codec = GpsiSpillCodec;
    let control = RunControl {
        cancel,
        // In-engine whole-run checkpoint capture needs every partition's
        // state; a cluster member checkpoints through the shard sink.
        checkpoint: checkpoint && cluster_exchange.is_none(),
        resume,
        exchange: cluster_exchange,
        sink: shard_sink.as_ref().map(|s| s as &dyn FrontierSink<Gpsi, WorkerState>),
        spill: spill_store.as_ref().map(|store| SpillControl { store, codec: &spill_codec }),
        tracer: hooks.tracer,
    };
    let outcome = psgl_bsp::run_controlled(
        shared.graph.num_vertices(),
        &partitioner,
        &program,
        &bsp_config,
        executor,
        control,
    );
    // The spill directory is about to be swept by the store's drop guard;
    // record what it held so a degraded run's disk traffic is attributable
    // after the fact. Seeded tracers omit the path (it embeds a per-run
    // serial that would break event-stream determinism).
    if let (Some(t), Some(store)) = (hooks.tracer, spill_store.as_ref()) {
        let mut fields = vec![
            ("spilled_chunks", psgl_obs::Value::U64(store.spilled_chunks())),
            ("spilled_bytes", psgl_obs::Value::U64(store.spilled_bytes())),
            ("readmitted_chunks", psgl_obs::Value::U64(store.readmitted())),
            ("write_failures", psgl_obs::Value::U64(store.write_failures())),
        ];
        if !t.is_seeded() {
            fields.push(("dir", psgl_obs::Value::Str(store.dir().display().to_string())));
        }
        t.event("spill_dir_cleaned", &fields);
    }
    let outcome = outcome.map_err(|e| match e {
        // Report the configured per-worker budget, not the engine's
        // global derived one.
        psgl_bsp::BspError::MessageBudgetExceeded { in_flight, .. } => {
            PsglError::OutOfMemory { in_flight, budget: config.gpsi_budget.unwrap_or(0) }
        }
        other => PsglError::Engine(other),
    })?;
    match outcome {
        RunOutcome::Complete(result) => {
            let mut expand = ExpandStats::default();
            for ws in &result.worker_states {
                expand.merge(&ws.stats);
                if ws.failed {
                    return Err(PsglError::OutOfMemory {
                        in_flight: expand.generated,
                        budget: config.max_fanout.unwrap_or(0),
                    });
                }
            }
            let listing = assemble_listing(shared, expand, &result.metrics);
            Ok(EngineEnd::Complete(listing, result.worker_states))
        }
        RunOutcome::Cancelled(c) => {
            let mut expand = ExpandStats::default();
            for ws in &c.worker_states {
                expand.merge(&ws.stats);
            }
            let mut partial = assemble_listing(shared, expand, &c.metrics);
            if config.collect_instances {
                let mut buf = Vec::new();
                for ws in &c.worker_states {
                    if let Harvest::Instances(found) = &ws.harvest {
                        buf.extend(found.iter().cloned());
                    }
                }
                buf.sort_unstable();
                partial.instances = Some(buf);
            }
            let checkpoint = c.frontier.map(|frontier| Checkpoint {
                guard,
                superstep: c.superstep,
                carried: CarriedCounters::of(&c.metrics),
                prior_supersteps: c.metrics.supersteps,
                workers: c.worker_states.iter().map(snapshot_worker).collect(),
                frontier,
            });
            Ok(EngineEnd::Cancelled(Box::new(CancelledListing {
                reason: c.reason,
                superstep: c.superstep,
                partial,
                checkpoint,
            })))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::Strategy;
    use psgl_graph::generators::{chung_lu, erdos_renyi_gnm};
    use psgl_graph::DataGraph;
    use psgl_pattern::catalog;

    fn k4() -> DataGraph {
        DataGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn counts_on_k4_match_hand_counts() {
        let g = k4();
        let c = PsglConfig::with_workers(2);
        assert_eq!(list_subgraphs(&g, &catalog::triangle(), &c).unwrap().instance_count, 4);
        assert_eq!(list_subgraphs(&g, &catalog::square(), &c).unwrap().instance_count, 3);
        assert_eq!(list_subgraphs(&g, &catalog::four_clique(), &c).unwrap().instance_count, 1);
        assert_eq!(list_subgraphs(&g, &catalog::tailed_triangle(), &c).unwrap().instance_count, 12);
    }

    #[test]
    fn counts_invariant_across_strategies_and_workers() {
        let g = erdos_renyi_gnm(150, 900, 11).unwrap();
        let reference = list_subgraphs(&g, &catalog::triangle(), &PsglConfig::with_workers(1))
            .unwrap()
            .instance_count;
        assert!(reference > 0, "dense-ish ER graph should contain triangles");
        for (_, strategy) in Strategy::paper_variants() {
            for workers in [2, 5] {
                let c = PsglConfig::with_workers(workers).strategy(strategy);
                let got = list_subgraphs(&g, &catalog::triangle(), &c).unwrap().instance_count;
                assert_eq!(got, reference, "{strategy:?} x {workers}");
            }
        }
    }

    #[test]
    fn capped_spilling_run_matches_uncapped_across_strategies() {
        // The out-of-core acceptance gate: a run whose live-chunk cap is
        // clamped to <= 25% of the uncapped run's peak must serve the
        // bit-identical instance multiset by spilling cold frontier chunks
        // to disk, across every paper distribution strategy.
        let g = chung_lu(400, 8.0, 2.2, 5).unwrap();
        let pattern = catalog::square();
        for (name, strategy) in Strategy::paper_variants() {
            let config = PsglConfig::with_workers(3).strategy(strategy).collect(true);
            let shared = PsglShared::prepare(&g, &pattern, &config).unwrap();
            // Fine-grained chunks so this graph's frontier spans enough of
            // them for a 25% cap to be meaningful.
            let base_hooks = RunnerHooks { chunk_capacity: Some(32), ..Default::default() };
            let base = list_subgraphs_prepared_with(&shared, &config, &base_hooks).unwrap();
            let peak = base.stats.chunks_live_peak;
            assert!(peak > 4, "{name}: uncapped peak {peak} leaves no room to cap");
            let cap = (peak / 4).max(1) as u64;
            let hooks = RunnerHooks {
                chunk_capacity: Some(32),
                max_live_chunks: Some(cap),
                spill: Some(psgl_bsp::SpillConfig::in_temp()),
                ..Default::default()
            };
            let capped = list_subgraphs_prepared_with(&shared, &config, &hooks).unwrap();
            let mut want = base.instances.clone().unwrap();
            let mut got = capped.instances.clone().unwrap();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "{name}: instance multiset diverged under the cap");
            let stats = &capped.stats;
            assert!(stats.spill_chunks > 0, "{name}: capped run never touched the disk");
            assert!(stats.spill_bytes > 0, "{name}: spilled chunks carried no bytes");
            assert_eq!(
                stats.readmitted_chunks, stats.spill_chunks,
                "{name}: spilled and re-admitted chunk counts diverge on a complete run"
            );
            assert_eq!(stats.chunks_outstanding, 0, "{name}: pooled chunks leaked");
            assert!(
                stats.chunks_live_peak <= peak,
                "{name}: capped peak {} above uncapped {peak}",
                stats.chunks_live_peak
            );
        }
    }

    #[test]
    fn collected_instances_are_valid_and_distinct() {
        let g = erdos_renyi_gnm(80, 400, 3).unwrap();
        let c = PsglConfig::with_workers(3).collect(true);
        let res = list_subgraphs(&g, &catalog::triangle(), &c).unwrap();
        let instances = res.instances.unwrap();
        assert_eq!(instances.len() as u64, res.instance_count);
        let mut keys: Vec<Vec<u32>> = instances
            .iter()
            .map(|i| {
                let mut k = i.clone();
                k.sort_unstable();
                k
            })
            .collect();
        for (inst, key) in instances.iter().zip(&keys) {
            assert!(g.has_edge(inst[0], inst[1]));
            assert!(g.has_edge(inst[1], inst[2]));
            assert!(g.has_edge(inst[0], inst[2]));
            assert_eq!(key.windows(2).filter(|w| w[0] == w[1]).count(), 0);
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), instances.len(), "duplicate instances listed");
    }

    #[test]
    fn index_off_still_correct_but_generates_more_gpsis() {
        let g = chung_lu(400, 8.0, 2.2, 5).unwrap();
        let with = list_subgraphs(&g, &catalog::square(), &PsglConfig::with_workers(2)).unwrap();
        let without =
            list_subgraphs(&g, &catalog::square(), &PsglConfig::with_workers(2).edge_index(false))
                .unwrap();
        assert_eq!(with.instance_count, without.instance_count);
        assert!(
            without.stats.expand.generated >= with.stats.expand.generated,
            "index must not increase Gpsi volume ({} vs {})",
            without.stats.expand.generated,
            with.stats.expand.generated
        );
    }

    #[test]
    fn gpsi_budget_reports_simulated_oom() {
        let g = chung_lu(500, 10.0, 1.8, 6).unwrap();
        let c = PsglConfig { gpsi_budget: Some(10), ..PsglConfig::with_workers(2) };
        match list_subgraphs(&g, &catalog::square(), &c) {
            Err(PsglError::OutOfMemory { in_flight, budget: 10 }) => assert!(in_flight > 10),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn fanout_limit_reports_simulated_oom() {
        let edges: Vec<(u32, u32)> = (1..=40).map(|i| (0, i)).collect();
        let g = DataGraph::from_edges(41, &edges).unwrap();
        let c = PsglConfig { max_fanout: Some(5), ..PsglConfig::with_workers(2) };
        assert!(matches!(
            list_subgraphs(&g, &catalog::star(2), &c),
            Err(PsglError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn superstep_count_obeys_theorem_1_upper_bound() {
        // S ≤ |Vp| - 1 expansion supersteps; plus the initialization
        // superstep and the final empty superstep in our engine accounting.
        let g = erdos_renyi_gnm(100, 500, 8).unwrap();
        for p in catalog::paper_patterns() {
            let res = list_subgraphs(&g, &p, &PsglConfig::with_workers(2)).unwrap();
            let expansion_steps = res.stats.supersteps.saturating_sub(2);
            assert!(
                expansion_steps <= p.num_vertices(),
                "{p:?}: {expansion_steps} expansion supersteps"
            );
        }
    }

    #[test]
    fn single_vertex_pattern_counts_vertices() {
        let g = erdos_renyi_gnm(50, 100, 4).unwrap();
        let res = list_subgraphs(&g, &catalog::path(1), &PsglConfig::with_workers(2)).unwrap();
        assert_eq!(res.instance_count, 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = chung_lu(300, 6.0, 2.0, 9).unwrap();
        let c = PsglConfig::with_workers(3).strategy(Strategy::Random).seed(5);
        let a = list_subgraphs(&g, &catalog::square(), &c).unwrap();
        let b = list_subgraphs(&g, &catalog::square(), &c).unwrap();
        assert_eq!(a.instance_count, b.instance_count);
        assert_eq!(a.stats.per_worker_cost, b.stats.per_worker_cost);
        assert_eq!(a.stats.messages, b.stats.messages);
    }

    #[test]
    fn clique_listing_uses_verification_supersteps() {
        // Section 7.2: "For the clique pattern graph, it only generates
        // the partial subgraph instances in the first iteration and the
        // following iterations are for the verification." After the first
        // expansion every vertex is mapped, so later supersteps only
        // verify.
        let g = erdos_renyi_gnm(120, 900, 14).unwrap();
        let res =
            list_subgraphs(&g, &catalog::four_clique(), &PsglConfig::with_workers(2)).unwrap();
        assert!(res.instance_count > 0, "dense ER graph should contain 4-cliques");
        // Supersteps: init + first expansion + 2 verification rounds
        // (Theorem 1: |MVC| = 3 expansion steps for K4) + final empty.
        assert!(res.stats.supersteps <= 5, "got {}", res.stats.supersteps);
        // Every instance goes through the two verification expansions.
        assert!(res.stats.expand.expanded >= res.instance_count * 2);
    }

    #[test]
    fn larger_cycles_and_cliques_work_at_engine_limit() {
        let g = erdos_renyi_gnm(60, 400, 25).unwrap();
        for p in [catalog::cycle(7), catalog::clique(5), catalog::cycle(8)] {
            let res = list_subgraphs(&g, &p, &PsglConfig::with_workers(2)).unwrap();
            // Cross-checked against the oracle in the integration tests;
            // here we assert the run completes within Theorem 1's bound.
            assert!(res.stats.supersteps <= p.num_vertices() + 2, "{p:?}");
        }
    }

    #[test]
    fn labeled_matching_on_k4() {
        let g = k4();
        // Labels: vertices 0,1 are "A"(=1), vertices 2,3 are "B"(=2).
        let data_labels = vec![1, 1, 2, 2];
        // Triangle with pattern labels A, A, B: both A's and one of two
        // B's: 2 instances (012, 013).
        let res = list_subgraphs_labeled(
            &g,
            &catalog::triangle(),
            data_labels.clone(),
            vec![1, 1, 2],
            &PsglConfig::with_workers(2),
        )
        .unwrap();
        assert_eq!(res.instance_count, 2);
        // All-A triangle: needs 3 A-vertices, only 2 exist.
        let res = list_subgraphs_labeled(
            &g,
            &catalog::triangle(),
            data_labels.clone(),
            vec![1, 1, 1],
            &PsglConfig::with_workers(2),
        )
        .unwrap();
        assert_eq!(res.instance_count, 0);
        // Path A-B-B has only the identity label-preserving automorphism,
        // so count = embeddings: a ∈ {0,1} × (b,c) ordered from {2,3}: 4.
        let res = list_subgraphs_labeled(
            &g,
            &catalog::path(3),
            data_labels,
            vec![1, 2, 2],
            &PsglConfig::with_workers(2),
        )
        .unwrap();
        assert_eq!(res.instance_count, 4);
    }

    #[test]
    fn labeled_with_uniform_labels_equals_unlabeled() {
        let g = erdos_renyi_gnm(80, 400, 6).unwrap();
        for p in [catalog::triangle(), catalog::square()] {
            let plain =
                list_subgraphs(&g, &p, &PsglConfig::with_workers(2)).unwrap().instance_count;
            let labeled = list_subgraphs_labeled(
                &g,
                &p,
                vec![0; g.num_vertices()],
                vec![0; p.num_vertices()],
                &PsglConfig::with_workers(2),
            )
            .unwrap()
            .instance_count;
            assert_eq!(plain, labeled, "{p:?}");
        }
    }

    #[test]
    fn labeled_rejects_bad_label_lengths() {
        let g = k4();
        assert!(matches!(
            list_subgraphs_labeled(
                &g,
                &catalog::triangle(),
                vec![1, 1],
                vec![1, 1, 1],
                &PsglConfig::default()
            ),
            Err(PsglError::LabelLengthMismatch { expected: 4, got: 2 })
        ));
        assert!(matches!(
            list_subgraphs_labeled(
                &g,
                &catalog::triangle(),
                vec![1; 4],
                vec![1; 2],
                &PsglConfig::default()
            ),
            Err(PsglError::LabelLengthMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn per_vertex_counts_sum_and_localize() {
        let g = k4();
        let (counts, result) =
            count_per_vertex(&g, &catalog::triangle(), &PsglConfig::with_workers(2)).unwrap();
        // K4: each vertex lies in C(3,2) = 3 triangles.
        assert_eq!(counts, vec![3, 3, 3, 3]);
        assert_eq!(result.instance_count, 4);
        assert_eq!(counts.iter().sum::<u64>(), result.instance_count * 3);
        // A path graph has no triangles anywhere.
        let p = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (counts, _) =
            count_per_vertex(&p, &catalog::triangle(), &PsglConfig::with_workers(2)).unwrap();
        assert_eq!(counts, vec![0, 0, 0, 0]);
    }

    #[test]
    fn per_vertex_counts_match_collected_instances() {
        let g = erdos_renyi_gnm(70, 350, 19).unwrap();
        let (counts, _) =
            count_per_vertex(&g, &catalog::square(), &PsglConfig::with_workers(3)).unwrap();
        let collected =
            list_subgraphs(&g, &catalog::square(), &PsglConfig::with_workers(3).collect(true))
                .unwrap()
                .instances
                .unwrap();
        let mut expected = vec![0u64; g.num_vertices()];
        for inst in collected {
            for v in inst {
                expected[v as usize] += 1;
            }
        }
        assert_eq!(counts, expected);
    }

    #[test]
    fn without_automorphism_breaking_counts_multiply_by_aut() {
        let g = erdos_renyi_gnm(60, 300, 15).unwrap();
        for (p, aut) in
            [(catalog::triangle(), 6), (catalog::square(), 8), (catalog::tailed_triangle(), 2)]
        {
            let broken = list_subgraphs(&g, &p, &PsglConfig::with_workers(2)).unwrap();
            let unbroken = list_subgraphs(
                &g,
                &p,
                &PsglConfig { break_automorphisms: false, ..PsglConfig::with_workers(2) },
            )
            .unwrap();
            assert_eq!(
                unbroken.instance_count,
                broken.instance_count * aut,
                "{p:?}: every instance should appear |Aut| times without breaking"
            );
        }
    }

    #[test]
    fn empty_graph_lists_nothing() {
        let g = DataGraph::from_edges(0, &[]).unwrap();
        let res = list_subgraphs(&g, &catalog::triangle(), &PsglConfig::with_workers(2)).unwrap();
        assert_eq!(res.instance_count, 0);
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        let g = erdos_renyi_gnm(120, 700, 21).unwrap();
        // Generic odometer: the two-hop kernel closes squares in the first
        // expansion superstep, before the deadline this test relies on.
        let config = PsglConfig::with_workers(3).collect(true).kernels(false);
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        let full = list_subgraphs_prepared(&shared, &config).unwrap();
        assert!(full.instance_count > 0, "reference run should find squares");

        let token = CancelToken::with_superstep_deadline(2);
        let end = list_subgraphs_resumable(
            &shared,
            &config,
            &RunnerHooks::default(),
            RunControls { cancel: Some(&token), checkpoint: true, resume: None, cluster: None },
        )
        .unwrap();
        let ListingEnd::Cancelled(cancelled) = end else { panic!("run should hit the deadline") };
        assert_eq!(cancelled.reason, CancelReason::Deadline);
        assert_eq!(cancelled.superstep, 2);
        assert!(cancelled.partial.instance_count <= full.instance_count);
        let cp = cancelled.checkpoint.expect("soft cancel captures a checkpoint");

        // Through the wire format and back — the service's resume-token path.
        let cp = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        let end = list_subgraphs_resumable(
            &shared,
            &config,
            &RunnerHooks::default(),
            RunControls { resume: Some(cp), ..RunControls::default() },
        )
        .unwrap();
        let ListingEnd::Complete(resumed) = end else { panic!("resumed run should complete") };
        assert_eq!(resumed.instance_count, full.instance_count);
        assert_eq!(resumed.instances, full.instances);
        assert_eq!(resumed.stats.messages, full.stats.messages);
        assert_eq!(resumed.stats.per_worker_cost, full.stats.per_worker_cost);
        assert_eq!(resumed.stats.supersteps, full.stats.supersteps);
        assert_eq!(resumed.stats.chunks_outstanding, 0);
    }

    #[test]
    fn sliced_run_reproduces_uninterrupted_run() {
        let g = erdos_renyi_gnm(120, 700, 21).unwrap();
        // Generic odometer keeps the square run alive past several
        // barriers so slicing actually preempts.
        let config = PsglConfig::with_workers(3).collect(true).kernels(false);
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        let full = list_subgraphs_prepared(&shared, &config).unwrap();
        assert!(full.instance_count > 0, "reference run should find squares");

        let token = CancelToken::new();
        let mut resume = None;
        let mut preemptions = 0;
        let finished = loop {
            let end = list_subgraphs_slice(
                &shared,
                &config,
                &RunnerHooks::default(),
                &token,
                false,
                resume.take(),
                1,
            )
            .unwrap();
            match end {
                SliceEnd::Complete(result) => break result,
                SliceEnd::Preempted { superstep, partial, checkpoint } => {
                    assert!(partial.instance_count <= full.instance_count);
                    assert_eq!(checkpoint.superstep, superstep);
                    preemptions += 1;
                    // Through the wire format and back, as the service's
                    // checkpoint store would do.
                    resume = Some(Checkpoint::from_bytes(&checkpoint.to_bytes()).unwrap());
                }
                SliceEnd::Cancelled(c) => panic!("unexpected cancel: {:?}", c.reason),
            }
            assert!(preemptions < 64, "sliced run must converge");
        };
        assert!(preemptions >= 2, "one-superstep slices must preempt repeatedly");
        assert_eq!(finished.instance_count, full.instance_count);
        assert_eq!(finished.instances, full.instances);
        assert_eq!(finished.stats.messages, full.stats.messages);
        assert_eq!(finished.stats.supersteps, full.stats.supersteps);
        assert_eq!(finished.stats.chunks_outstanding, 0);
    }

    #[test]
    fn drained_slices_partition_the_instance_multiset() {
        let g = erdos_renyi_gnm(120, 700, 21).unwrap();
        let config = PsglConfig::with_workers(3).collect(true).kernels(false);
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        let full = list_subgraphs_prepared(&shared, &config).unwrap();

        let token = CancelToken::new();
        let mut resume = None;
        let mut pages: Vec<Vec<psgl_graph::csr::VertexId>> = Vec::new();
        let finished = loop {
            let end = list_subgraphs_slice(
                &shared,
                &config,
                &RunnerHooks::default(),
                &token,
                false,
                resume.take(),
                1,
            )
            .unwrap();
            match end {
                SliceEnd::Complete(result) => break result,
                SliceEnd::Preempted { mut checkpoint, .. } => {
                    pages.extend(checkpoint.drain_instances());
                    resume = Some(*checkpoint);
                }
                SliceEnd::Cancelled(c) => panic!("unexpected cancel: {:?}", c.reason),
            }
        };
        // Draining between slices never disturbs the count; the pages
        // plus the final tail are exactly the full multiset. (With the
        // stock expansion every instance completes at the same superstep
        // — one pattern vertex per superstep — so mid-run drains are
        // empty and the tail carries everything; the invariant must hold
        // either way.)
        assert_eq!(finished.instance_count, full.instance_count);
        pages.extend(finished.instances.unwrap());
        pages.sort_unstable();
        assert_eq!(Some(pages), full.instances);
    }

    #[test]
    fn explicit_cancel_returns_partial_without_checkpoint() {
        let g = erdos_renyi_gnm(100, 500, 8).unwrap();
        let config = PsglConfig::with_workers(2);
        let shared = PsglShared::prepare(&g, &catalog::triangle(), &config).unwrap();
        let token = CancelToken::new();
        token.cancel(CancelReason::Explicit);
        let end = list_subgraphs_resumable(
            &shared,
            &config,
            &RunnerHooks::default(),
            RunControls { cancel: Some(&token), checkpoint: true, resume: None, cluster: None },
        )
        .unwrap();
        let ListingEnd::Cancelled(c) = end else { panic!("pre-cancelled run cannot complete") };
        assert_eq!(c.reason, CancelReason::Explicit);
        assert!(c.checkpoint.is_none(), "hard cancels capture no checkpoint");
        assert_eq!(c.partial.stats.chunks_outstanding, 0);
    }

    #[test]
    fn budget_cancel_with_checkpoint_resumes_under_higher_budget() {
        let g = chung_lu(500, 10.0, 1.8, 6).unwrap();
        let config = PsglConfig::with_workers(2);
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        let full = list_subgraphs_prepared(&shared, &config).unwrap();

        let tight = PsglConfig { gpsi_budget: Some(10), ..PsglConfig::with_workers(2) };
        let end = list_subgraphs_resumable(
            &shared,
            &tight,
            &RunnerHooks::default(),
            RunControls { checkpoint: true, ..RunControls::default() },
        )
        .unwrap();
        let ListingEnd::Cancelled(c) = end else { panic!("tight budget must fire") };
        assert_eq!(c.reason, CancelReason::Budget);
        let cp = c.checkpoint.expect("budget cancel with checkpointing is resumable");

        // The guard does not pin the budget: the same run resumes without
        // one and completes exactly.
        let end = list_subgraphs_resumable(
            &shared,
            &config,
            &RunnerHooks::default(),
            RunControls { resume: Some(cp), ..RunControls::default() },
        )
        .unwrap();
        let ListingEnd::Complete(resumed) = end else { panic!("resumed run should complete") };
        assert_eq!(resumed.instance_count, full.instance_count);
    }

    #[test]
    fn checkpoint_guard_rejects_a_different_run() {
        let g = erdos_renyi_gnm(90, 450, 13).unwrap();
        // Generic odometer so the square run outlives the deadline.
        let config = PsglConfig::with_workers(2).seed(1).kernels(false);
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        let token = CancelToken::with_superstep_deadline(2);
        let end = list_subgraphs_resumable(
            &shared,
            &config,
            &RunnerHooks::default(),
            RunControls { cancel: Some(&token), checkpoint: true, resume: None, cluster: None },
        )
        .unwrap();
        let ListingEnd::Cancelled(c) = end else { panic!("run should hit the deadline") };
        let cp = c.checkpoint.unwrap();

        let other = PsglConfig::with_workers(2).seed(2);
        let other_shared = PsglShared::prepare(&g, &catalog::square(), &other).unwrap();
        let err = match list_subgraphs_resumable(
            &other_shared,
            &other,
            &RunnerHooks::default(),
            RunControls { resume: Some(cp), ..RunControls::default() },
        ) {
            Err(e) => e,
            Ok(_) => panic!("guard mismatch must be rejected"),
        };
        assert!(matches!(err, PsglError::Checkpoint(_)), "got {err:?}");
    }
}
