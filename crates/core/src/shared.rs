//! Read-only per-run context shared by all workers.
//!
//! Section 6: besides the vertex program, PSgL distributes several pieces
//! of *shared data* to every worker — the pattern graph, the selected
//! initial pattern vertex, the light-weight edge index, and degree
//! statistics. They are small (the paper: Twitter's edge index is 2 GB on a
//! 48 GB node), static, and computed once before the run; each worker keeps
//! a reference.

use crate::gpsi::{EdgeIds, MAX_GPSI_VERTICES};
use crate::index::EdgeIndex;
use crate::init_vertex::SelectionRule;
use crate::plan::QueryPlan;
use crate::PsglConfig;
use psgl_graph::{DataGraph, DegreeStats, OrderedGraph};
use psgl_pattern::labeled::{break_automorphisms_labeled, Label};
use psgl_pattern::{PartialOrderSet, Pattern, PatternVertex};
use std::sync::Arc;

/// Errors raised while preparing or running a PSgL listing.
#[derive(Debug)]
pub enum PsglError {
    /// The pattern exceeds [`MAX_GPSI_VERTICES`] vertices.
    PatternTooLarge(usize),
    /// An explicitly configured initial vertex is out of range.
    BadInitialVertex(PatternVertex),
    /// Label arrays did not match the graph / pattern sizes.
    LabelLengthMismatch {
        /// Expected number of labels.
        expected: usize,
        /// Provided number of labels.
        got: usize,
    },
    /// The in-flight Gpsi volume exceeded the configured budget — the
    /// simulated OutOfMemory failure of Tables 2 and 4.
    OutOfMemory {
        /// Gpsis in flight when the budget tripped.
        in_flight: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The underlying BSP engine failed (worker panic, superstep limit).
    Engine(psgl_bsp::BspError),
    /// A resume checkpoint failed to decode or did not match the run it
    /// was submitted against.
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl std::fmt::Display for PsglError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsglError::PatternTooLarge(n) => {
                write!(f, "pattern has {n} vertices; the engine supports {MAX_GPSI_VERTICES}")
            }
            PsglError::BadInitialVertex(v) => write!(f, "initial pattern vertex {v} out of range"),
            PsglError::LabelLengthMismatch { expected, got } => {
                write!(f, "label array length {got} does not match vertex count {expected}")
            }
            PsglError::OutOfMemory { in_flight, budget } => write!(
                f,
                "out of memory (simulated): {in_flight} partial subgraph instances exceed \
                 budget {budget}"
            ),
            PsglError::Engine(e) => write!(f, "BSP engine error: {e}"),
            PsglError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PsglError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PsglError::Engine(e) => Some(e),
            PsglError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::checkpoint::CheckpointError> for PsglError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        PsglError::Checkpoint(e)
    }
}

impl From<psgl_bsp::BspError> for PsglError {
    fn from(e: psgl_bsp::BspError) -> Self {
        match e {
            psgl_bsp::BspError::MessageBudgetExceeded { in_flight, budget, .. } => {
                PsglError::OutOfMemory { in_flight, budget }
            }
            other => PsglError::Engine(other),
        }
    }
}

/// Immutable context for one listing run.
pub struct PsglShared<'g> {
    /// The data graph (distributed across workers by the partitioner).
    pub graph: &'g DataGraph,
    /// Degree-based total order with `nb`/`ns` (Section 3). Shared so a
    /// long-running server can reuse it across queries ([`Self::from_parts`]).
    pub ordered: Arc<OrderedGraph>,
    /// The pattern being listed.
    pub pattern: Pattern,
    /// Partial order set from automorphism breaking (Section 5.2.1).
    pub order: PartialOrderSet,
    /// Pattern-edge numbering for verified-edge masks.
    pub edge_ids: EdgeIds,
    /// The light-weight edge index, if enabled (Section 5.2.3). Shared
    /// like [`Self::ordered`].
    pub index: Option<Arc<EdgeIndex>>,
    /// Selected initial pattern vertex (Section 5.2.2).
    pub init_vertex: PatternVertex,
    /// How the initial vertex was chosen.
    pub selection_rule: SelectionRule,
    /// Vertex labels for labeled matching: `(data_labels, pattern_labels)`.
    /// `None` = the paper's unlabeled listing.
    pub labels: Option<(Vec<Label>, Vec<Label>)>,
    /// Pattern-shape classification from the plan (reporting + dispatch).
    pub shape: psgl_pattern::PatternShape,
    /// Whether expansions may dispatch to compiled kernels
    /// ([`crate::plan::KernelId`]); `false` forces the generic odometer.
    pub compiled_kernels: bool,
    /// Kernel the plan selected for the initial expansion.
    pub initial_kernel: crate::plan::KernelId,
}

impl<'g> PsglShared<'g> {
    /// Prepares the shared context: orders the data graph, breaks the
    /// pattern's automorphisms, builds the edge index and selects the
    /// initial pattern vertex (all the paper's offline steps).
    pub fn prepare(
        graph: &'g DataGraph,
        pattern: &Pattern,
        config: &PsglConfig,
    ) -> Result<PsglShared<'g>, PsglError> {
        let histogram = DegreeStats::of_graph(graph).histogram;
        let plan = QueryPlan::prepare(pattern, config, &histogram)?;
        let ordered = Arc::new(OrderedGraph::new(graph));
        let index = config
            .use_edge_index
            .then(|| Arc::new(EdgeIndex::build(graph, config.index_bits_per_edge)));
        Ok(PsglShared::from_parts(graph, ordered, index, &plan))
    }

    /// Assembles a run context from pre-built graph artifacts and a cached
    /// [`QueryPlan`] — the server path, where the ordered graph / edge
    /// index live in a catalog and plans in a per-graph plan cache, so
    /// none of the offline work of [`Self::prepare`] is repeated.
    pub fn from_parts(
        graph: &'g DataGraph,
        ordered: Arc<OrderedGraph>,
        index: Option<Arc<EdgeIndex>>,
        plan: &QueryPlan,
    ) -> PsglShared<'g> {
        PsglShared {
            graph,
            ordered,
            pattern: plan.pattern.clone(),
            order: plan.order.clone(),
            edge_ids: plan.edge_ids.clone(),
            index,
            init_vertex: plan.init_vertex,
            selection_rule: plan.selection_rule,
            labels: None,
            shape: plan.shape,
            compiled_kernels: plan.compiled_kernels,
            initial_kernel: plan.initial_kernel,
        }
    }

    /// Prepares a *labeled* matching context (Section 2's subgraph-matching
    /// generalization): a candidate data vertex must carry the same label
    /// as the pattern vertex it maps to, and automorphism breaking is
    /// restricted to label-preserving symmetries (breaking a
    /// label-crossing symmetry would discard valid instances).
    pub fn prepare_labeled(
        graph: &'g DataGraph,
        pattern: &Pattern,
        config: &PsglConfig,
        data_labels: Vec<Label>,
        pattern_labels: Vec<Label>,
    ) -> Result<PsglShared<'g>, PsglError> {
        if data_labels.len() != graph.num_vertices() {
            return Err(PsglError::LabelLengthMismatch {
                expected: graph.num_vertices(),
                got: data_labels.len(),
            });
        }
        if pattern_labels.len() != pattern.num_vertices() {
            return Err(PsglError::LabelLengthMismatch {
                expected: pattern.num_vertices(),
                got: pattern_labels.len(),
            });
        }
        let mut shared = PsglShared::prepare(graph, pattern, config)?;
        shared.order = if config.break_automorphisms {
            break_automorphisms_labeled(pattern, &pattern_labels)
        } else {
            PartialOrderSet::new(pattern.num_vertices())
        };
        shared.labels = Some((data_labels, pattern_labels));
        Ok(shared)
    }

    /// Whether data vertex `vd` is label-compatible with pattern vertex
    /// `vp` (always true in unlabeled mode).
    #[inline]
    pub fn label_ok(&self, vp: PatternVertex, vd: psgl_graph::VertexId) -> bool {
        match &self.labels {
            None => true,
            Some((data, pattern)) => data[vd as usize] == pattern[vp as usize],
        }
    }

    /// Remote edge-existence check used by pruning rule 2: goes through the
    /// bloom index when enabled. Returns `None` when no index is configured
    /// (the check must then be skipped — checking a remote edge exactly is
    /// what the index exists to avoid).
    #[inline]
    pub fn index_check(&self, u: psgl_graph::VertexId, v: psgl_graph::VertexId) -> Option<bool> {
        self.index.as_ref().map(|idx| idx.may_contain(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgl_graph::generators::erdos_renyi_gnm;
    use psgl_pattern::catalog;

    #[test]
    fn prepare_selects_deterministic_rule_for_triangle() {
        let g = erdos_renyi_gnm(100, 300, 1).unwrap();
        let config = PsglConfig::default();
        let shared = PsglShared::prepare(&g, &catalog::triangle(), &config).unwrap();
        assert_eq!(shared.init_vertex, 0);
        assert_eq!(shared.selection_rule, SelectionRule::DeterministicLowestRank);
        assert!(shared.index.is_some());
        assert_eq!(shared.edge_ids.count(), 3);
    }

    #[test]
    fn prepare_honors_fixed_vertex_and_rejects_bad_one() {
        let g = erdos_renyi_gnm(50, 100, 2).unwrap();
        let mut config = PsglConfig { init_vertex: Some(2), ..Default::default() };
        let shared = PsglShared::prepare(&g, &catalog::square(), &config).unwrap();
        assert_eq!(shared.init_vertex, 2);
        assert_eq!(shared.selection_rule, SelectionRule::Fixed);
        config.init_vertex = Some(9);
        assert!(matches!(
            PsglShared::prepare(&g, &catalog::square(), &config),
            Err(PsglError::BadInitialVertex(9))
        ));
    }

    #[test]
    fn prepare_rejects_oversized_patterns() {
        let g = erdos_renyi_gnm(50, 100, 2).unwrap();
        let p = catalog::cycle(13);
        assert!(matches!(
            PsglShared::prepare(&g, &p, &PsglConfig::default()),
            Err(PsglError::PatternTooLarge(13))
        ));
    }

    #[test]
    fn index_can_be_disabled() {
        let g = erdos_renyi_gnm(50, 100, 2).unwrap();
        let config = PsglConfig { use_edge_index: false, ..Default::default() };
        let shared = PsglShared::prepare(&g, &catalog::triangle(), &config).unwrap();
        assert!(shared.index.is_none());
        assert_eq!(shared.index_check(0, 1), None);
    }
}
