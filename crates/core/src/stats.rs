//! Run statistics: Gpsi counts, pruning breakdown, per-worker loads.
//!
//! These counters power the paper's evaluation artifacts directly:
//! Table 2 reports Gpsi counts with/without the edge index (pruning ratio),
//! Figure 5 reports per-worker load, and Section 4.4's cost metrics are
//! accumulated in Equation 2 units.

/// Counters accumulated while expanding Gpsis (one per worker, merged at
/// the end of a run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpandStats {
    /// Gpsis expanded (Algorithm 1 invocations).
    pub expanded: u64,
    /// New Gpsis generated (including complete instances).
    pub generated: u64,
    /// Complete subgraph instances found.
    pub results: u64,
    /// Candidates rejected: data vertex already used (injectivity).
    pub pruned_injectivity: u64,
    /// Candidates rejected by the degree rule.
    pub pruned_degree: u64,
    /// Candidates rejected by the partial order from automorphism breaking.
    pub pruned_order: u64,
    /// Candidates rejected by the light-weight edge index (rule 2).
    pub pruned_connectivity: u64,
    /// Candidates rejected by a label mismatch (labeled matching only).
    pub pruned_label: u64,
    /// Gpsis that died because a GRAY edge check failed (Algorithm 2).
    pub died_gray_check: u64,
    /// Gpsis that died with an empty candidate set (Algorithm 5).
    pub died_no_candidates: u64,
    /// Candidate combinations examined during the cartesian-product step
    /// (including ones pruned before becoming Gpsis) — the enumeration
    /// work term of Equation 2.
    pub combinations_examined: u64,
    /// Edge-index probes issued.
    pub index_probes: u64,
    /// Accumulated cost in Equation 2 units.
    pub cost: u64,
    /// Expansions handled by the connectivity-map closing kernel.
    pub kernel_close: u64,
    /// Expansions handled by the two-hop (wedge-join) closing kernel.
    pub kernel_twohop: u64,
    /// Connectivity-map lookups performed by compiled kernels.
    pub cmap_probes: u64,
    /// Of `cmap_probes`, lookups that found the required connectivity.
    pub cmap_hits: u64,
    /// Exact adjacency checks taken down the galloping-merge path.
    pub intersect_gallop: u64,
    /// Adjacency intersections taken down the cmap mark-and-probe path
    /// (one per marked adjacency list).
    pub intersect_probe: u64,
}

impl ExpandStats {
    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &ExpandStats) {
        self.expanded += other.expanded;
        self.generated += other.generated;
        self.results += other.results;
        self.pruned_injectivity += other.pruned_injectivity;
        self.pruned_degree += other.pruned_degree;
        self.pruned_order += other.pruned_order;
        self.pruned_connectivity += other.pruned_connectivity;
        self.pruned_label += other.pruned_label;
        self.died_gray_check += other.died_gray_check;
        self.died_no_candidates += other.died_no_candidates;
        self.combinations_examined += other.combinations_examined;
        self.index_probes += other.index_probes;
        self.cost += other.cost;
        self.kernel_close += other.kernel_close;
        self.kernel_twohop += other.kernel_twohop;
        self.cmap_probes += other.cmap_probes;
        self.cmap_hits += other.cmap_hits;
        self.intersect_gallop += other.intersect_gallop;
        self.intersect_probe += other.intersect_probe;
    }

    /// Total candidates pruned by any rule.
    pub fn total_pruned(&self) -> u64 {
        self.pruned_injectivity
            + self.pruned_degree
            + self.pruned_order
            + self.pruned_connectivity
            + self.pruned_label
    }
}

/// Aggregated statistics of a whole listing run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Merged expansion counters.
    pub expand: ExpandStats,
    /// Per-worker total cost (Figure 5's data series).
    pub per_worker_cost: Vec<u64>,
    /// Simulated makespan in Equation 3 units (`Σ_s max_k L_ks`).
    pub simulated_makespan: u64,
    /// Number of supersteps the run took.
    pub supersteps: usize,
    /// Total Gpsi messages exchanged between workers.
    pub messages: u64,
    /// Of `messages`, how many were delivered on the sending worker's own
    /// fast path without touching the exchange.
    pub messages_local: u64,
    /// Message units claimed by non-owner workers (work stealing).
    pub chunks_stolen: u64,
    /// Bytes of message tuples that crossed the inter-worker exchange.
    pub bytes_exchanged: u64,
    /// Gpsi messages produced per superstep (the paper's per-iteration
    /// intermediate-result curves; also the sim harness's message-
    /// conservation invariant: `out[s] == in[s+1]`).
    pub messages_out_per_superstep: Vec<u64>,
    /// Gpsi messages consumed per superstep.
    pub messages_in_per_superstep: Vec<u64>,
    /// Times the chunk pool's live-chunk cap forced the degraded
    /// grow-in-place path (0 when the pool is uncapped).
    pub pool_exhausted: u64,
    /// Chunk-pool get/put imbalance at engine shutdown (0 on a clean run).
    pub chunks_outstanding: i64,
    /// High-water mark of simultaneously live pool chunks — the run's
    /// actual memory footprint in chunk units.
    pub chunks_live_peak: i64,
    /// Chunks evicted to the disk spill tier (0 with spill disabled).
    pub spill_chunks: u64,
    /// Framed bytes written to spill blobs.
    pub spill_bytes: u64,
    /// Milliseconds stalled in spill I/O (write + re-admission).
    pub spill_stall_ms: u64,
    /// Chunks' worth of spilled tuples re-admitted from disk.
    pub readmitted_chunks: u64,
    /// Wall-clock duration of the BSP run.
    pub wall_time: std::time::Duration,
    /// Max/mean imbalance of per-worker cost (1.0 = perfect).
    pub cost_imbalance: f64,
    /// Wire frames sent across the cluster data plane (0 in-process).
    pub frames_sent: u64,
    /// Wire frames received from the cluster data plane (0 in-process).
    pub frames_received: u64,
    /// Bytes sent across the cluster data plane (0 in-process).
    pub wire_bytes_sent: u64,
    /// Bytes received from the cluster data plane (0 in-process).
    pub wire_bytes_received: u64,
    /// Total nanoseconds spent waiting at superstep barriers (0 in-process).
    pub barrier_wait_nanos: u64,
    /// Barrier wait per superstep, in nanoseconds.
    pub barrier_wait_per_superstep: Vec<u64>,
    /// Compute time per superstep (sum of worker elapsed), in nanoseconds.
    /// Wall-clock derived: excluded from deterministic fingerprints.
    pub compute_nanos_per_superstep: Vec<u64>,
    /// Exchange (outbox flush + routing + peer drain) time per superstep,
    /// in nanoseconds. Wall-clock derived.
    pub exchange_nanos_per_superstep: Vec<u64>,
    /// Spill-tier stall per superstep, in nanoseconds. Wall-clock derived.
    pub spill_stall_per_superstep: Vec<u64>,
    /// Spill writes that failed and degraded the sender to resident growth.
    pub spill_write_failures: u64,
}

impl RunStats {
    /// The slow-query timeline: per superstep, how long the run spent
    /// computing vs waiting at the barrier vs stalled in spill I/O vs
    /// inside the exchange (all in fractional milliseconds).
    pub fn superstep_timeline(&self) -> Vec<psgl_obs::SuperstepTiming> {
        let ms = |nanos: u64| nanos as f64 / 1_000_000.0;
        let at = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        (0..self.supersteps)
            .map(|i| psgl_obs::SuperstepTiming {
                superstep: i as u32,
                compute_ms: ms(at(&self.compute_nanos_per_superstep, i)),
                barrier_ms: ms(at(&self.barrier_wait_per_superstep, i)),
                spill_stall_ms: ms(at(&self.spill_stall_per_superstep, i)),
                exchange_ms: ms(at(&self.exchange_nanos_per_superstep, i)),
            })
            .collect()
    }
}

impl RunStats {
    /// Fraction of messages that never crossed the exchange (0.0 for a run
    /// that sent no messages).
    pub fn local_delivery_ratio(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.messages_local as f64 / self.messages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ExpandStats { expanded: 1, generated: 2, results: 3, ..Default::default() };
        let b = ExpandStats {
            expanded: 10,
            generated: 20,
            results: 30,
            pruned_injectivity: 1,
            pruned_degree: 2,
            pruned_order: 3,
            pruned_connectivity: 4,
            pruned_label: 9,
            died_gray_check: 5,
            died_no_candidates: 6,
            combinations_examined: 11,
            index_probes: 7,
            cost: 8,
            kernel_close: 12,
            kernel_twohop: 13,
            cmap_probes: 14,
            cmap_hits: 15,
            intersect_gallop: 16,
            intersect_probe: 17,
        };
        a.merge(&b);
        assert_eq!(a.expanded, 11);
        assert_eq!(a.generated, 22);
        assert_eq!(a.results, 33);
        assert_eq!(a.total_pruned(), 19);
        assert_eq!(a.cost, 8);
        assert_eq!(a.index_probes, 7);
        assert_eq!(a.combinations_examined, 11);
        assert_eq!(a.died_gray_check, 5);
        assert_eq!(a.died_no_candidates, 6);
        assert_eq!(a.kernel_close, 12);
        assert_eq!(a.kernel_twohop, 13);
        assert_eq!(a.cmap_probes, 14);
        assert_eq!(a.cmap_hits, 15);
        assert_eq!(a.intersect_gallop, 16);
        assert_eq!(a.intersect_probe, 17);
    }
}
