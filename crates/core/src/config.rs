//! Run configuration for a PSgL listing.

use crate::distribute::Strategy;
use psgl_pattern::PatternVertex;

/// Configuration for one subgraph-listing run.
#[derive(Clone, Debug)]
pub struct PsglConfig {
    /// Number of logical workers (the paper's cluster size knob).
    pub workers: usize,
    /// Distribution strategy (Section 5.1); the paper's best performer
    /// `(WA, 0.5)` is the default.
    pub strategy: Strategy,
    /// Initial pattern vertex; `None` selects automatically (Theorem 5
    /// rule for cycles/cliques, cost model otherwise).
    pub init_vertex: Option<PatternVertex>,
    /// Whether to break the pattern's automorphisms (Section 5.2.1).
    /// Disabling makes every instance appear `|Aut(Gp)|` times — the
    /// duplicate blow-up the paper's preprocessing removes; exposed for the
    /// ablation benchmark.
    pub break_automorphisms: bool,
    /// Whether to build and use the light-weight edge index
    /// (Section 5.2.3). Disabling reproduces Table 2's "w/o index" rows.
    pub use_edge_index: bool,
    /// Bloom-filter precision knob: bits per edge (8 ≈ 2% false positives,
    /// 12 ≈ 0.5%).
    pub index_bits_per_edge: usize,
    /// Collect the actual instances (vertex tuples) instead of only
    /// counting. The paper outputs occurrence counts by default but "can
    /// store them if necessary" (Section 7.1).
    pub collect_instances: bool,
    /// Abort when a single worker holds more than this many outgoing
    /// Gpsis within one superstep — the simulated *per-node* OutOfMemory
    /// of Tables 2 and 4 ("the imbalanced distribution leads to OOM on
    /// some nodes", Section 7.6). The engine additionally enforces
    /// `workers x budget` globally at the superstep barrier.
    pub gpsi_budget: Option<u64>,
    /// Abort when a single expansion fans out beyond this many Gpsis.
    pub max_fanout: Option<u64>,
    /// Superstep safety limit.
    pub max_supersteps: u32,
    /// Let idle workers steal message units from stragglers within a
    /// superstep. Counts are unaffected, but per-worker metrics become
    /// scheduling-dependent, so it defaults to off (determinism).
    pub steal: bool,
    /// Dispatch pattern-specialized expansion kernels (connectivity-map
    /// closing, two-hop wedge joins) selected at plan time. Disabling
    /// forces the generic odometer everywhere and reproduces the paper's
    /// expand-then-verify superstep structure exactly; the listed instance
    /// multiset is identical either way.
    pub compiled_kernels: bool,
    /// RNG seed (random/roulette strategies, partitioner salt).
    pub seed: u64,
    /// Disk spill tier for memory-bounded execution: when the engine's
    /// live-chunk cap bites, cold frontier chunks are evicted to a
    /// per-run temp directory instead of growing the pool in place, and
    /// re-admitted at superstep boundaries. `None` (the default) keeps
    /// the seed behavior: the pool grows past the cap in place.
    pub spill: Option<psgl_bsp::SpillConfig>,
}

impl Default for PsglConfig {
    fn default() -> Self {
        PsglConfig {
            workers: 4,
            strategy: Strategy::WorkloadAware { alpha: 0.5 },
            init_vertex: None,
            break_automorphisms: true,
            use_edge_index: true,
            index_bits_per_edge: 10,
            collect_instances: false,
            gpsi_budget: None,
            max_fanout: None,
            max_supersteps: 64,
            steal: false,
            compiled_kernels: true,
            seed: 42,
            spill: None,
        }
    }
}

impl PsglConfig {
    /// Convenience: default configuration with `workers` workers.
    pub fn with_workers(workers: usize) -> Self {
        PsglConfig { workers, ..Default::default() }
    }

    /// Builder-style strategy override.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style initial-vertex override.
    pub fn init_vertex(mut self, v: PatternVertex) -> Self {
        self.init_vertex = Some(v);
        self
    }

    /// Builder-style edge-index toggle.
    pub fn edge_index(mut self, enabled: bool) -> Self {
        self.use_edge_index = enabled;
        self
    }

    /// Builder-style instance collection toggle.
    pub fn collect(mut self, enabled: bool) -> Self {
        self.collect_instances = enabled;
        self
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style work-stealing toggle.
    pub fn steal(mut self, enabled: bool) -> Self {
        self.steal = enabled;
        self
    }

    /// Builder-style compiled-kernel toggle.
    pub fn kernels(mut self, enabled: bool) -> Self {
        self.compiled_kernels = enabled;
        self
    }

    /// Builder-style spill-tier configuration.
    pub fn spill(mut self, config: psgl_bsp::SpillConfig) -> Self {
        self.spill = Some(config);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_best_practice() {
        let c = PsglConfig::default();
        assert_eq!(c.strategy, Strategy::WorkloadAware { alpha: 0.5 });
        assert!(c.use_edge_index);
        assert!(c.init_vertex.is_none());
        assert!(!c.collect_instances);
    }

    #[test]
    fn builder_chain() {
        let c = PsglConfig::with_workers(8)
            .strategy(Strategy::Random)
            .init_vertex(2)
            .edge_index(false)
            .collect(true)
            .seed(7);
        assert_eq!(c.workers, 8);
        assert_eq!(c.strategy, Strategy::Random);
        assert_eq!(c.init_vertex, Some(2));
        assert!(!c.use_edge_index);
        assert!(c.collect_instances);
        assert_eq!(c.seed, 7);
    }
}
