//! Property tests for the distribution strategies (Section 5.1): every
//! paper variant chooses in-range and deterministically under a fixed
//! seed; the α=1 workload-aware rule respects the Theorem-3 greedy bound;
//! the binomial load estimate is monotone where the binomial is.

use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy as _};
use psgl_core::distribute::{estimated_load, Distributor, GrayCandidate, Strategy};
use psgl_graph::partition::HashPartitioner;

/// Roulette weights use a fixed `MAX_GPSI_VERTICES = 12` scratch array, so
/// candidate lists are bounded by the pattern size in production too.
const MAX_CANDIDATES: usize = 12;

fn candidates_strategy() -> impl proptest::Strategy<Value = Vec<GrayCandidate>> {
    vec((0u32..10_000, 0u32..500, 0u32..6), 1..MAX_CANDIDATES).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (vd, degree, white))| GrayCandidate {
                vp: i as u8,
                vd,
                degree,
                white_neighbors: white,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every strategy in the paper's Figure-3 grid returns an index into
    /// the candidate slice, for arbitrary candidate lists.
    #[test]
    fn every_paper_variant_chooses_in_range(
        cands in candidates_strategy(),
        workers in 1usize..9,
        seed in proptest::any::<u64>(),
    ) {
        let p = HashPartitioner::new(workers);
        for (name, strategy) in Strategy::paper_variants() {
            let mut d = Distributor::new(strategy, workers, seed);
            for round in 0..4 {
                let idx = d.choose(&cands, &p);
                prop_assert!(
                    idx < cands.len(),
                    "{name} returned {idx} for {} candidates (round {round})",
                    cands.len()
                );
            }
        }
    }

    /// Two distributors built from the same `(strategy, workers, seed)`
    /// make identical decision sequences — the property the replay harness
    /// (crates/sim) leans on.
    #[test]
    fn choices_are_deterministic_under_a_fixed_seed(
        cands in candidates_strategy(),
        workers in 1usize..9,
        seed in proptest::any::<u64>(),
    ) {
        let p = HashPartitioner::new(workers);
        for (name, strategy) in Strategy::paper_variants() {
            let mut a = Distributor::new(strategy, workers, seed);
            let mut b = Distributor::new(strategy, workers, seed);
            for round in 0..8 {
                prop_assert_eq!(
                    a.choose(&cands, &p),
                    b.choose(&cands, &p),
                    "{} diverged at round {} under seed {}",
                    name, round, seed
                );
            }
        }
    }

    /// Theorem-3 sanity bound for the classic greedy rule (α = 1): the
    /// chosen candidate's `W_j + w_ij` never exceeds the minimum achievable
    /// `W_j' + w_ij'` over all candidates by more than the largest single
    /// increment — the slack the K·OPT makespan argument tolerates. (The
    /// implementation is exactly argmin, so the observed slack is 0, but
    /// the property is stated with the theorem's tolerance.)
    #[test]
    fn wa_alpha1_respects_the_greedy_makespan_bound(
        cands in candidates_strategy(),
        workers in 1usize..9,
        seed in proptest::any::<u64>(),
    ) {
        let p = HashPartitioner::new(workers);
        let mut d = Distributor::new(Strategy::WorkloadAware { alpha: 1.0 }, workers, seed);
        for _ in 0..16 {
            // Snapshot the local workload view *before* the decision.
            let w_before = d.workload_view().to_vec();
            let cost = |c: &GrayCandidate| {
                w_before[p.owner(c.vd)] + estimated_load(c.degree, c.white_neighbors)
            };
            let idx = d.choose(&cands, &p);
            let chosen_cost = cost(&cands[idx]);
            let min_cost = cands.iter().map(&cost).fold(f64::INFINITY, f64::min);
            let max_single = cands
                .iter()
                .map(|c| estimated_load(c.degree, c.white_neighbors))
                .fold(0.0f64, f64::max);
            prop_assert!(
                chosen_cost <= min_cost + max_single,
                "greedy bound violated: chosen {chosen_cost}, min {min_cost}, max w_ij {max_single}"
            );
        }
    }

    /// `estimated_load = C(degree, w)` is monotone non-decreasing in the
    /// degree for a fixed white-neighbor count.
    #[test]
    fn estimated_load_is_monotone_in_degree(
        degree in 0u32..2_000,
        white in 0u32..8,
    ) {
        prop_assert!(
            estimated_load(degree + 1, white) >= estimated_load(degree, white),
            "C({} + 1, {w}) < C({d}, {w})", degree, w = white, d = degree
        );
    }

    /// The binomial is *unimodal* in `w`, peaking at `degree / 2` — so
    /// monotonicity in the white-neighbor count only holds on the rising
    /// flank `w ≤ degree / 2`, and the property is restricted accordingly.
    #[test]
    fn estimated_load_rises_with_white_neighbors_below_the_mode(
        degree in 2u32..2_000,
        raw_w in 1u32..1_000,
    ) {
        let w = 1 + raw_w % (degree / 2).max(1); // w in [1, degree/2]
        prop_assert!(
            estimated_load(degree, w) >= estimated_load(degree, w - 1),
            "C({degree}, {w}) < C({degree}, {})", w - 1
        );
    }
}

/// The workload-aware view only ever grows by the estimated load of the
/// chosen candidate — no phantom work appears in the local view.
#[test]
fn wa_view_grows_exactly_by_the_chosen_load() {
    let p = HashPartitioner::new(4);
    let mut d = Distributor::new(Strategy::WorkloadAware { alpha: 0.5 }, 4, 99);
    let cands: Vec<GrayCandidate> = (0..5)
        .map(|i| GrayCandidate { vp: i as u8, vd: i * 17, degree: 10 + i * 3, white_neighbors: 2 })
        .collect();
    for _ in 0..32 {
        let before: f64 = d.workload_view().iter().sum();
        let idx = d.choose(&cands, &p);
        let after: f64 = d.workload_view().iter().sum();
        let inc = estimated_load(cands[idx].degree, cands[idx].white_neighbors);
        assert!(
            (after - before - inc).abs() < 1e-9,
            "view grew by {} but chosen load was {inc}",
            after - before
        );
    }
}
