//! Property tests for the bloom-filter edge index (Section 5.2.3): the
//! no-false-negatives contract must hold on arbitrary random graphs at any
//! precision setting, and the measured false-positive rate must stay under
//! a documented bound derived from the filter's actual geometry.

use proptest::{prop_assert, proptest, ProptestConfig};
use psgl_core::EdgeIndex;
use psgl_graph::generators::erdos_renyi_gnm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index's one hard guarantee: a `false` answer is definitive.
    /// Probe every indexed edge (both orientations) on random G(n, m)
    /// graphs across the whole precision range.
    #[test]
    fn zero_false_negatives_on_random_graphs(
        n in 5u32..400,
        density in 1u64..6,
        seed in 0u64..1_000_000,
        bits_per_edge in 2usize..17,
    ) {
        let max_m = u64::from(n) * u64::from(n - 1) / 2;
        let m = (u64::from(n) * density).min(max_m);
        let g = erdos_renyi_gnm(n as usize, m, seed).unwrap();
        let idx = EdgeIndex::build(&g, bits_per_edge);
        for (u, v) in g.edges() {
            prop_assert!(idx.may_contain(u, v), "false negative on {u}-{v}");
            prop_assert!(idx.may_contain(v, u), "asymmetric false negative on {v}-{u}");
        }
    }

    /// Documented bound: a register-blocked filter pays at most a small
    /// constant factor over the classic bloom rate `(1 - e^{-k/b})^k`,
    /// where `b` is the filter's *actual* bits-per-edge (the bit array is
    /// rounded up to a power of two, so `b` ≥ the requested precision) and
    /// `k = clamp(round(b_req · ln 2), 1, 8)` probes. We assert the
    /// measured rate stays within 4× the classic formula plus sampling
    /// slack — loose enough to be robust, tight enough to catch a filter
    /// that degrades to "always true".
    #[test]
    fn measured_fpr_stays_under_the_documented_bound(
        seed in 0u64..100_000,
        bits_per_edge in 4usize..17,
    ) {
        let g = erdos_renyi_gnm(1_500, 15_000, seed).unwrap();
        let idx = EdgeIndex::build(&g, bits_per_edge);
        let b_actual = (idx.memory_bytes() * 8) as f64 / idx.num_edges() as f64;
        let k = ((bits_per_edge as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 8);
        let classic = (1.0 - (-f64::from(k) / b_actual).exp()).powi(k as i32);
        let bound = 4.0 * classic + 0.01;
        let measured = idx.measured_fpr(&g, 20_000, seed ^ 0xF9);
        prop_assert!(
            measured <= bound,
            "fpr {measured:.4} over bound {bound:.4} (classic {classic:.4}, \
             {b_actual:.1} bits/edge, k = {k})"
        );
    }

    /// More bits per edge never makes the measured rate meaningfully
    /// worse: the precision knob must actually buy precision.
    #[test]
    fn precision_knob_is_effective(seed in 0u64..100_000) {
        let g = erdos_renyi_gnm(1_500, 15_000, seed).unwrap();
        let coarse = EdgeIndex::build(&g, 4).measured_fpr(&g, 20_000, seed);
        let fine = EdgeIndex::build(&g, 16).measured_fpr(&g, 20_000, seed);
        prop_assert!(
            fine <= coarse + 0.005,
            "16 bits/edge fpr {fine:.4} worse than 4 bits/edge {coarse:.4}"
        );
    }
}
