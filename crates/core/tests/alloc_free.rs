//! Asserts the hot-path discipline of the expansion kernel: once every
//! retained buffer has been sized by a warm-up pass, a full listing run
//! driven through [`expand_gpsi`] performs **zero** heap allocations.
//!
//! The check uses a counting `#[global_allocator]`: the first (warm-up)
//! run may allocate freely while the scratch, queue and outbox grow to
//! their high-water marks; the second, identical run (fresh distributor
//! with the same seed, so the expansion sequence is bit-for-bit the same)
//! must not touch the allocator at all.

use psgl_core::distribute::{Distributor, Strategy};
use psgl_core::expand::{expand_gpsi, ExpandLimits, ExpandOutcome, ExpandScratch};
use psgl_core::stats::ExpandStats;
use psgl_core::{Gpsi, PsglConfig, PsglShared};
use psgl_graph::generators::erdos_renyi_gnm;
use psgl_graph::partition::HashPartitioner;
use psgl_pattern::catalog;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drives a complete single-worker listing through the kernel, reusing the
/// caller's scratch, queue and outbox buffers. Returns the instance count.
fn drive(
    shared: &PsglShared<'_>,
    partitioner: &HashPartitioner,
    distributor: &mut Distributor,
    scratch: &mut ExpandScratch,
    queue: &mut Vec<Gpsi>,
    out: &mut Vec<Gpsi>,
) -> u64 {
    let g = shared.graph;
    let pattern = &shared.pattern;
    let init = shared.init_vertex;
    let mut stats = ExpandStats::default();
    let mut found = 0u64;
    queue.clear();
    for v in g.vertices() {
        if g.degree(v) >= pattern.degree(init) {
            queue.push(Gpsi::initial(init, v));
        }
    }
    while let Some(gpsi) = queue.pop() {
        out.clear();
        let outcome = expand_gpsi(
            shared,
            gpsi,
            scratch,
            distributor,
            partitioner,
            &ExpandLimits::default(),
            out,
            &mut |_| found += 1,
            &mut stats,
        );
        assert_eq!(outcome, ExpandOutcome::Done);
        queue.append(out);
    }
    found
}

#[test]
fn steady_state_expansion_allocates_nothing() {
    // Dense-ish ER graph so both patterns actually produce instances.
    let g = erdos_renyi_gnm(120, 1500, 7).unwrap();
    let config = PsglConfig::default();
    let partitioner = HashPartitioner::new(1);
    for pattern in [catalog::triangle(), catalog::four_clique()] {
        let shared = PsglShared::prepare(&g, &pattern, &config).unwrap();
        let mut scratch = ExpandScratch::new();
        let mut queue: Vec<Gpsi> = Vec::new();
        let mut out: Vec<Gpsi> = Vec::new();
        // Warm-up: sizes every retained buffer to its high-water mark.
        let mut distributor = Distributor::new(Strategy::Random, 1, 99);
        let warm =
            drive(&shared, &partitioner, &mut distributor, &mut scratch, &mut queue, &mut out);
        assert!(warm > 0, "{pattern:?}: fixture graph should contain instances");
        // Fresh same-seeded distributor (created *outside* the measured
        // region — its workload Vec allocates) replays the identical
        // expansion sequence.
        let mut distributor = Distributor::new(Strategy::Random, 1, 99);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let again =
            drive(&shared, &partitioner, &mut distributor, &mut scratch, &mut queue, &mut out);
        let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
        assert_eq!(again, warm, "{pattern:?}: replay must list the same instances");
        assert_eq!(delta, 0, "{pattern:?}: steady-state run hit the allocator {delta} times");
    }
}
