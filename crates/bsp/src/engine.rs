//! The BSP engine: supersteps, workers, message exchange.

use crate::metrics::{EngineMetrics, SuperstepMetrics, WorkerSuperstepMetrics};
use psgl_graph::partition::HashPartitioner;
use psgl_graph::VertexId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BspConfig {
    /// Safety limit on supersteps; exceeding it is an error (a PSgL run on
    /// a pattern with `|Vp|` vertices needs at most `|Vp|` supersteps).
    pub max_supersteps: u32,
    /// Abort when more than this many messages are in flight after a
    /// superstep — deterministic stand-in for the cluster's OutOfMemory
    /// failures in Tables 2 and 4. `None` = unlimited.
    pub message_budget: Option<u64>,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig { max_supersteps: 64, message_budget: None }
    }
}

/// Errors terminating a BSP run.
#[derive(Debug)]
pub enum BspError {
    /// A worker's `compute` panicked; the run is aborted.
    WorkerPanicked {
        /// Worker that panicked.
        worker: usize,
        /// Superstep during which the panic happened.
        superstep: u32,
    },
    /// The in-flight message volume exceeded [`BspConfig::message_budget`].
    /// The paper reports these as OOM failures.
    MessageBudgetExceeded {
        /// Superstep after which the budget check failed.
        superstep: u32,
        /// Messages in flight at that point.
        in_flight: u64,
        /// The configured budget.
        budget: u64,
    },
    /// [`BspConfig::max_supersteps`] was reached with messages still
    /// in flight.
    SuperstepLimitExceeded(u32),
}

impl std::fmt::Display for BspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BspError::WorkerPanicked { worker, superstep } => {
                write!(f, "worker {worker} panicked in superstep {superstep}")
            }
            BspError::MessageBudgetExceeded { superstep, in_flight, budget } => write!(
                f,
                "out of memory (simulated): {in_flight} messages in flight after superstep \
                 {superstep} exceeds budget {budget}"
            ),
            BspError::SuperstepLimitExceeded(s) => {
                write!(f, "superstep limit {s} reached with messages still in flight")
            }
        }
    }
}

impl std::error::Error for BspError {}

/// Per-worker, per-superstep execution context handed to
/// [`VertexProgram::compute`].
pub struct Context<'a, M, A = ()> {
    superstep: u32,
    worker: usize,
    partitioner: &'a HashPartitioner,
    outboxes: &'a mut [Vec<(VertexId, M)>],
    cost: u64,
    messages_out: u64,
    /// The merged aggregate of the *previous* superstep (Pregel semantics).
    prev_aggregate: &'a A,
    /// This worker's aggregate contribution for the current superstep.
    local_aggregate: &'a mut A,
}

impl<'a, M, A> Context<'a, M, A> {
    /// The global aggregate merged at the end of the previous superstep
    /// (the `A::default()` value during superstep 0).
    #[inline]
    pub fn prev_aggregate(&self) -> &A {
        self.prev_aggregate
    }

    /// Mutable access to this worker's aggregate contribution; the engine
    /// merges all contributions at the superstep barrier with
    /// [`VertexProgram::merge_aggregates`].
    #[inline]
    pub fn aggregate_mut(&mut self) -> &mut A {
        self.local_aggregate
    }
    /// Current superstep (0 = initialization).
    #[inline]
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Id of the executing worker.
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Total number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.partitioner.workers()
    }

    /// The vertex partitioner (vertex → owning worker).
    #[inline]
    pub fn partitioner(&self) -> &HashPartitioner {
        self.partitioner
    }

    /// Sends `msg` to vertex `to`; it is delivered at the next superstep on
    /// the worker owning `to`.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.messages_out += 1;
        self.outboxes[self.partitioner.owner(to)].push((to, msg));
    }

    /// Adds `units` to this worker's cost for the current superstep
    /// (PSgL: the `load(Gpsi)` terms of Equation 2).
    #[inline]
    pub fn add_cost(&mut self, units: u64) {
        self.cost += units;
    }
}

/// A vertex-centric program in the Pregel style.
///
/// The engine calls [`VertexProgram::compute`] on every vertex in
/// superstep 0 with no messages (PSgL's initialization phase) and on every
/// vertex with pending messages in later supersteps. The run halts when no
/// messages are in flight.
pub trait VertexProgram: Sync {
    /// Message type exchanged between vertices.
    type Message: Send;
    /// Mutable per-worker state (e.g. local result buffers, the
    /// distribution strategy's local workload view).
    type WorkerState: Send;
    /// Global aggregate merged at each superstep barrier (Pregel
    /// aggregators); use `()` when not needed.
    type Aggregate: Send + Sync + Default;

    /// Creates worker-local state before superstep 0.
    fn create_worker_state(&self, worker: usize) -> Self::WorkerState;

    /// Merges one worker's aggregate contribution into the accumulator.
    /// The default implementation discards contributions (fits the `()`
    /// aggregate).
    fn merge_aggregates(&self, _into: &mut Self::Aggregate, _from: Self::Aggregate) {}

    /// Processes `vertex` with its incoming `messages`.
    fn compute(
        &self,
        ctx: &mut Context<'_, Self::Message, Self::Aggregate>,
        state: &mut Self::WorkerState,
        vertex: VertexId,
        messages: Vec<Self::Message>,
    );
}

/// Result of a successful BSP run.
#[derive(Debug)]
pub struct BspResult<S, A = ()> {
    /// Final worker states, indexed by worker id.
    pub worker_states: Vec<S>,
    /// The merged aggregate of the final superstep.
    pub final_aggregate: A,
    /// Execution metrics.
    pub metrics: EngineMetrics,
}

/// Runs `program` over vertices `0..num_vertices` partitioned by
/// `partitioner`, until no messages remain in flight.
///
/// Workers run as scoped OS threads; the message exchange between
/// supersteps is the synchronous barrier. Deterministic for deterministic
/// programs: inboxes are assembled in source-worker order and grouped with
/// a stable sort.
pub fn run<P: VertexProgram>(
    num_vertices: usize,
    partitioner: &HashPartitioner,
    program: &P,
    config: &BspConfig,
) -> Result<BspResult<P::WorkerState, P::Aggregate>, BspError> {
    let k = partitioner.workers();
    let start = Instant::now();
    let mut states: Vec<P::WorkerState> = (0..k).map(|w| program.create_worker_state(w)).collect();
    // Owned vertex lists for superstep 0.
    let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for v in 0..num_vertices as VertexId {
        owned[partitioner.owner(v)].push(v);
    }
    let mut inboxes: Vec<Vec<(VertexId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
    let mut metrics = EngineMetrics::default();
    let mut superstep: u32 = 0;
    let mut merged_aggregate = P::Aggregate::default();
    loop {
        if superstep >= config.max_supersteps {
            return Err(BspError::SuperstepLimitExceeded(superstep));
        }
        // outboxes[w][dest] filled by worker w.
        let mut worker_results: Vec<Option<WorkerOutput<P>>> = (0..k).map(|_| None).collect();
        let prev_aggregate = &merged_aggregate;
        let panicked = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for (((worker, state), inbox), slot) in
                states.iter_mut().enumerate().zip(inboxes.iter_mut()).zip(worker_results.iter_mut())
            {
                let owned = &owned[worker];
                let handle = scope.spawn(move |_| {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        run_worker::<P>(
                            program,
                            state,
                            worker,
                            superstep,
                            partitioner,
                            k,
                            owned,
                            std::mem::take(inbox),
                            prev_aggregate,
                        )
                    }));
                    match result {
                        Ok(out) => {
                            *slot = Some(out);
                            None
                        }
                        Err(_) => Some(worker),
                    }
                });
                handles.push(handle);
            }
            let mut panicked = None;
            for h in handles {
                if let Some(w) = h.join().expect("scoped worker join") {
                    panicked.get_or_insert(w);
                }
            }
            panicked
        })
        .expect("crossbeam scope");
        if let Some(worker) = panicked {
            return Err(BspError::WorkerPanicked { worker, superstep });
        }
        // Collect metrics, merge aggregates, and rebuild inboxes in
        // source-worker order.
        let mut step = SuperstepMetrics { workers: Vec::with_capacity(k) };
        let mut new_inboxes: Vec<Vec<(VertexId, P::Message)>> =
            (0..k).map(|_| Vec::new()).collect();
        let mut next_aggregate = P::Aggregate::default();
        for result in worker_results {
            let (outboxes, wm, agg) = result.expect("worker result present when no panic");
            step.workers.push(wm);
            program.merge_aggregates(&mut next_aggregate, agg);
            for (dest, mut msgs) in outboxes.into_iter().enumerate() {
                new_inboxes[dest].append(&mut msgs);
            }
        }
        merged_aggregate = next_aggregate;
        let in_flight: u64 = new_inboxes.iter().map(|b| b.len() as u64).sum();
        metrics.supersteps.push(step);
        if let Some(budget) = config.message_budget {
            if in_flight > budget {
                return Err(BspError::MessageBudgetExceeded { superstep, in_flight, budget });
            }
        }
        if in_flight == 0 {
            break;
        }
        inboxes = new_inboxes;
        superstep += 1;
    }
    metrics.wall_time = start.elapsed();
    Ok(BspResult { worker_states: states, final_aggregate: merged_aggregate, metrics })
}

/// Per-worker superstep output: outboxes (one per destination worker),
/// metrics, and the worker's aggregate contribution.
type WorkerOutput<P> = (
    Vec<Vec<(VertexId, <P as VertexProgram>::Message)>>,
    WorkerSuperstepMetrics,
    <P as VertexProgram>::Aggregate,
);

/// Executes one worker for one superstep; returns its outboxes and metrics.
#[allow(clippy::too_many_arguments)]
fn run_worker<P: VertexProgram>(
    program: &P,
    state: &mut P::WorkerState,
    worker: usize,
    superstep: u32,
    partitioner: &HashPartitioner,
    k: usize,
    owned: &[VertexId],
    mut inbox: Vec<(VertexId, P::Message)>,
    prev_aggregate: &P::Aggregate,
) -> WorkerOutput<P> {
    let started = Instant::now();
    let mut outboxes: Vec<Vec<(VertexId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
    let mut local_aggregate = P::Aggregate::default();
    let mut ctx = Context {
        superstep,
        worker,
        partitioner,
        outboxes: &mut outboxes,
        cost: 0,
        messages_out: 0,
        prev_aggregate,
        local_aggregate: &mut local_aggregate,
    };
    let messages_in = inbox.len() as u64;
    let mut active_vertices = 0u64;
    if superstep == 0 {
        for &v in owned {
            active_vertices += 1;
            program.compute(&mut ctx, state, v, Vec::new());
        }
    } else {
        // Group messages by destination vertex; stable sort keeps
        // source-worker order within a vertex for determinism.
        inbox.sort_by_key(|(v, _)| *v);
        let mut it = inbox.into_iter().peekable();
        while let Some((v, first)) = it.next() {
            let mut batch = vec![first];
            while it.peek().is_some_and(|(u, _)| *u == v) {
                batch.push(it.next().unwrap().1);
            }
            active_vertices += 1;
            program.compute(&mut ctx, state, v, batch);
        }
    }
    let wm = WorkerSuperstepMetrics {
        active_vertices,
        messages_in,
        messages_out: ctx.messages_out,
        cost: ctx.cost,
        elapsed: started.elapsed(),
    };
    (outboxes, wm, local_aggregate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use psgl_graph::generators::erdos_renyi_gnm;
    use psgl_graph::DataGraph;

    /// Min-label propagation: every vertex learns the smallest vertex id in
    /// its connected component. Exercises multi-superstep messaging.
    struct MinLabel<'g> {
        graph: &'g DataGraph,
        labels: Mutex<Vec<VertexId>>,
    }

    impl VertexProgram for MinLabel<'_> {
        type Message = VertexId;
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _worker: usize) {}

        fn compute(
            &self,
            ctx: &mut Context<'_, VertexId>,
            _state: &mut (),
            vertex: VertexId,
            messages: Vec<VertexId>,
        ) {
            ctx.add_cost(1 + messages.len() as u64);
            let current = self.labels.lock()[vertex as usize];
            let best = messages.into_iter().min().map_or(current, |m| m.min(current));
            let improved = best < current || ctx.superstep() == 0;
            if best < current {
                self.labels.lock()[vertex as usize] = best;
            }
            if improved {
                for &n in self.graph.neighbors(vertex) {
                    ctx.send(n, best);
                }
            }
        }
    }

    fn run_min_label(g: &DataGraph, workers: usize) -> Vec<VertexId> {
        let prog = MinLabel { graph: g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(workers);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        assert_eq!(res.worker_states.len(), workers);
        prog.labels.into_inner()
    }

    #[test]
    fn min_label_converges_on_two_components() {
        // Two triangles: {0,1,2} and {3,4,5}.
        let g =
            DataGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let labels = run_min_label(&g, 3);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn min_label_matches_across_worker_counts() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let base = run_min_label(&g, 1);
        for k in [2, 4, 7] {
            assert_eq!(run_min_label(&g, k), base, "worker count {k}");
        }
    }

    #[test]
    fn metrics_account_every_message() {
        let g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(2);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        let m = &res.metrics;
        assert!(m.superstep_count() >= 2);
        // Messages consumed in superstep s+1 == messages produced in s.
        for s in 0..m.superstep_count() - 1 {
            let out: u64 = m.supersteps[s].workers.iter().map(|w| w.messages_out).sum();
            let consumed: u64 = m.supersteps[s + 1].workers.iter().map(|w| w.messages_in).sum();
            assert_eq!(out, consumed, "superstep {s}");
        }
        // Final superstep emits nothing.
        assert_eq!(m.supersteps.last().unwrap().messages_out(), 0);
        assert!(m.simulated_makespan() > 0);
        assert!(m.total_cost() >= m.simulated_makespan());
    }

    /// A program that floods `fanout` messages from every vertex once.
    struct Flood {
        fanout: usize,
        n: usize,
    }

    impl VertexProgram for Flood {
        type Message = u8;
        type WorkerState = u64;
        type Aggregate = ();

        fn create_worker_state(&self, _worker: usize) -> u64 {
            0
        }

        fn compute(&self, ctx: &mut Context<'_, u8>, state: &mut u64, v: VertexId, msgs: Vec<u8>) {
            *state += msgs.len() as u64;
            if ctx.superstep() == 0 {
                for i in 0..self.fanout {
                    ctx.send(((v as usize + i + 1) % self.n) as VertexId, 0);
                }
            }
        }
    }

    #[test]
    fn message_budget_triggers_simulated_oom() {
        let prog = Flood { fanout: 10, n: 100 };
        let p = HashPartitioner::new(4);
        let config = BspConfig { message_budget: Some(500), ..Default::default() };
        match run(100, &p, &prog, &config) {
            Err(BspError::MessageBudgetExceeded { superstep: 0, in_flight: 1000, budget: 500 }) => {
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        // A budget that fits succeeds and delivers all messages.
        let config = BspConfig { message_budget: Some(1000), ..Default::default() };
        let res = run(100, &p, &prog, &config).unwrap();
        assert_eq!(res.worker_states.iter().sum::<u64>(), 1000);
    }

    struct Panicker;

    impl VertexProgram for Panicker {
        type Message = ();
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _w: usize) {}

        fn compute(&self, _ctx: &mut Context<'_, ()>, _s: &mut (), v: VertexId, _m: Vec<()>) {
            if v == 13 {
                panic!("boom");
            }
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        let p = HashPartitioner::new(3);
        match run(20, &p, &Panicker, &BspConfig::default()) {
            Err(BspError::WorkerPanicked { superstep: 0, worker }) => {
                assert_eq!(worker, p.owner(13));
            }
            other => panic!("expected panic containment, got {other:?}"),
        }
    }

    /// Endless ping-pong between vertices 0 and 1.
    struct PingPong;

    impl VertexProgram for PingPong {
        type Message = ();
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _w: usize) {}

        fn compute(&self, ctx: &mut Context<'_, ()>, _s: &mut (), v: VertexId, _m: Vec<()>) {
            if v < 2 {
                ctx.send(1 - v, ());
            }
        }
    }

    #[test]
    fn superstep_limit_stops_runaway_programs() {
        let p = HashPartitioner::new(2);
        let config = BspConfig { max_supersteps: 5, ..Default::default() };
        assert!(matches!(run(2, &p, &PingPong, &config), Err(BspError::SuperstepLimitExceeded(5))));
    }

    #[test]
    fn empty_vertex_set_halts_immediately() {
        let p = HashPartitioner::new(2);
        let res = run(0, &p, &Panicker, &BspConfig::default()).unwrap();
        assert_eq!(res.metrics.superstep_count(), 1);
        assert_eq!(res.metrics.total_messages(), 0);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BspError::MessageBudgetExceeded { superstep: 2, in_flight: 10, budget: 5 };
        assert!(e.to_string().contains("out of memory"));
        let e = BspError::WorkerPanicked { worker: 3, superstep: 1 };
        assert!(e.to_string().contains("worker 3"));
    }
}

#[cfg(test)]
mod aggregator_tests {
    use super::*;

    /// Sums active-vertex counts globally; vertices read the previous
    /// superstep's total.
    struct CountActive {
        observed: parking_lot::Mutex<Vec<u64>>,
    }

    impl VertexProgram for CountActive {
        type Message = ();
        type WorkerState = ();
        type Aggregate = u64;

        fn create_worker_state(&self, _w: usize) {}

        fn merge_aggregates(&self, into: &mut u64, from: u64) {
            *into += from;
        }

        fn compute(&self, ctx: &mut Context<'_, (), u64>, _s: &mut (), v: VertexId, _m: Vec<()>) {
            if v == 0 {
                self.observed.lock().push(*ctx.prev_aggregate());
            }
            *ctx.aggregate_mut() += 1;
            // Two message-driven rounds: all vertices ping vertex 0 once.
            if ctx.superstep() == 0 {
                ctx.send(0, ());
            }
        }
    }

    #[test]
    fn aggregates_merge_across_workers_with_pregel_semantics() {
        let n = 20;
        let prog = CountActive { observed: parking_lot::Mutex::new(Vec::new()) };
        let p = psgl_graph::partition::HashPartitioner::new(4);
        let result = run(n, &p, &prog, &BspConfig::default()).unwrap();
        // Superstep 0: all 20 vertices active; superstep 1: only vertex 0.
        assert_eq!(result.final_aggregate, 1);
        // Vertex 0 saw the default (0) in superstep 0 and the merged 20 in
        // superstep 1.
        assert_eq!(*prog.observed.lock(), vec![0, 20]);
    }
}
