//! The BSP engine: supersteps, workers, message exchange.
//!
//! Messages travel in fixed-capacity chunks recycled through a
//! [`ChunkPool`] (see [`crate::chunk`]): senders fill pooled chunks, the
//! exchange moves them by pointer, and receivers regroup them into
//! per-vertex units that idle workers may steal. Steady-state supersteps
//! therefore allocate nothing on the message path.
//!
//! Scheduling is pluggable through the [`Executor`] seam (see
//! [`crate::exec`]): [`run`] uses the production [`ThreadExecutor`] (one
//! scoped OS thread per worker), while [`run_with_executor`] lets tests
//! and the simulation harness drive the same per-worker closures under a
//! deterministic, adversarial schedule.

use crate::cancel::{CancelReason, CancelToken};
use crate::chunk::{
    push_chunked, Chunk, ChunkPool, PoolExhausted, StealQueue, DEFAULT_CHUNK_CAPACITY,
};
use crate::exchange::{Exchange, ExchangeDirective, FrontierSink, WorkerOutbox};
use crate::exec::{Executor, ThreadExecutor, WorkerTask};
use crate::metrics::{
    CarriedCounters, EngineMetrics, NetSuperstepMetrics, SuperstepMetrics, WorkerSuperstepMetrics,
};
use crate::spill::{SpillCodec, SpillError, SpillSegment, SpillStore};
use parking_lot::Mutex;
use psgl_graph::partition::HashPartitioner;
use psgl_graph::VertexId;
use psgl_obs::Value as TraceValue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BspConfig {
    /// Safety limit on supersteps; exceeding it is an error (a PSgL run on
    /// a pattern with `|Vp|` vertices needs at most `|Vp|` supersteps).
    pub max_supersteps: u32,
    /// Abort when more than this many messages are in flight after a
    /// superstep — deterministic stand-in for the cluster's OutOfMemory
    /// failures in Tables 2 and 4. `None` = unlimited.
    pub message_budget: Option<u64>,
    /// `(VertexId, M)` tuples per message chunk. Larger chunks amortize
    /// pool traffic; smaller chunks give stealing finer granularity.
    pub chunk_capacity: usize,
    /// Let idle workers claim message units from stragglers' inboxes
    /// within a superstep. Vertex-level results are unaffected (units
    /// never split a vertex's batch), but *which worker* processed a unit
    /// — and hence per-worker metrics and any worker-keyed program state —
    /// becomes scheduling-dependent, so stealing is opt-in.
    pub steal: bool,
    /// Cap on live message chunks; past it the pool reports the typed
    /// [`PoolExhausted`](crate::chunk::PoolExhausted) condition and
    /// senders degrade by growing their current chunk instead of
    /// allocating. Exhaustion events surface in
    /// [`EngineMetrics::pool_exhausted`]. `None` = unbounded (default).
    pub max_live_chunks: Option<u64>,
    /// With [`BspConfig::steal`] on, cap the units one worker may steal
    /// per superstep. Production leaves this `None` (steal until dry); the
    /// simulation harness uses small budgets to explore partial-steal
    /// schedules that a free-running sweep never produces.
    pub steal_budget: Option<u64>,
    /// Chaos knob: permute, per destination, the source-worker order in
    /// which the exchange assembles inboxes (seeded, deterministic).
    /// Exercises the BSP guarantee that results are independent of message
    /// arrival order at superstep boundaries. `None` (default) keeps the
    /// canonical source order.
    pub exchange_shuffle_seed: Option<u64>,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            max_supersteps: 64,
            message_budget: None,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            steal: false,
            max_live_chunks: None,
            steal_budget: None,
            exchange_shuffle_seed: None,
        }
    }
}

/// Errors terminating a BSP run.
#[derive(Debug)]
pub enum BspError {
    /// A worker's `compute` panicked; the run is aborted.
    WorkerPanicked {
        /// Worker that panicked.
        worker: usize,
        /// Superstep during which the panic happened.
        superstep: u32,
    },
    /// The in-flight message volume exceeded [`BspConfig::message_budget`].
    /// The paper reports these as OOM failures.
    MessageBudgetExceeded {
        /// Superstep after which the budget check failed.
        superstep: u32,
        /// Messages in flight at that point.
        in_flight: u64,
        /// The configured budget.
        budget: u64,
    },
    /// [`BspConfig::max_supersteps`] was reached with messages still
    /// in flight.
    SuperstepLimitExceeded(u32),
    /// A remote [`Exchange`] failed — a peer socket died, a frame failed
    /// to decode, or the coordinator vanished. Every pooled chunk was
    /// released before this was reported.
    Exchange {
        /// Superstep whose exchange failed.
        superstep: u32,
        /// Transport-level description of the failure.
        message: String,
    },
    /// The spill tier failed on the read side: a spilled frontier segment
    /// could not be re-admitted (truncated or corrupt blob, I/O error).
    /// The tuples on disk were the only copy, so the run aborts cleanly
    /// — every resident chunk was released before this was reported —
    /// instead of answering from a damaged frontier. Write-side spill
    /// failures never surface here; they degrade to resident retention.
    Spill {
        /// Superstep during which re-admission failed.
        superstep: u32,
        /// The typed spill failure.
        error: SpillError,
    },
    /// The pool's get/put balance was non-zero at a *clean* completion — a
    /// chunk leak (or double-free) that debug builds catch by assertion.
    /// Checked in release builds too so chaos sweeps in CI fail on leaks.
    ChunkLeak {
        /// Acquires minus releases at shutdown.
        outstanding: i64,
    },
}

impl std::fmt::Display for BspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BspError::WorkerPanicked { worker, superstep } => {
                write!(f, "worker {worker} panicked in superstep {superstep}")
            }
            BspError::MessageBudgetExceeded { superstep, in_flight, budget } => write!(
                f,
                "out of memory (simulated): {in_flight} messages in flight after superstep \
                 {superstep} exceeds budget {budget}"
            ),
            BspError::SuperstepLimitExceeded(s) => {
                write!(f, "superstep limit {s} reached with messages still in flight")
            }
            BspError::Exchange { superstep, message } => {
                write!(f, "exchange failed after superstep {superstep}: {message}")
            }
            BspError::Spill { superstep, error } => {
                write!(f, "spill re-admission failed in superstep {superstep}: {error}")
            }
            BspError::ChunkLeak { outstanding } => write!(
                f,
                "chunk pool get/put imbalance at clean engine shutdown: \
                 {outstanding} chunks unreleased (leak)"
            ),
        }
    }
}

impl std::error::Error for BspError {}

/// Spill-tier handles threaded through [`RunControl`]: the per-run
/// [`SpillStore`] (which owns the temp directory and deletes it on drop)
/// plus the message byte codec. Copyable so every worker closure can hold
/// one; `None` anywhere spill appears means the tier is disabled and the
/// engine degrades exactly as it did before the tier existed
/// (grow-in-place).
pub struct SpillControl<'c, M> {
    /// The per-run spill store.
    pub store: &'c SpillStore,
    /// Message byte codec for spill blobs.
    pub codec: &'c dyn SpillCodec<M>,
}

impl<M> Clone for SpillControl<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for SpillControl<'_, M> {}

/// One slot of a destination inbox: a resident pool chunk, or a spilled
/// segment standing in for the chunks it displaced. Parts appear in
/// delivery order; re-admission decodes a segment exactly where its
/// chunks would have been drained, so results are bit-identical to a
/// run that never spilled.
enum InboxPart<M> {
    /// A resident pooled chunk (zero-capacity = consumed placeholder).
    Chunk(Chunk<M>),
    /// An on-disk segment holding a run of evicted chunks.
    Spilled(SpillSegment),
}

impl<M> Default for InboxPart<M> {
    fn default() -> Self {
        InboxPart::Chunk(Chunk::default())
    }
}

/// Tuples a part will deliver (for in-flight accounting).
fn part_tuples<M>(part: &InboxPart<M>) -> u64 {
    match part {
        InboxPart::Chunk(c) => c.len() as u64,
        InboxPart::Spilled(s) => s.tuples,
    }
}

/// Per-worker, per-superstep execution context handed to
/// [`VertexProgram::compute`].
pub struct Context<'a, M, A = ()> {
    superstep: u32,
    worker: usize,
    partitioner: &'a HashPartitioner,
    pool: &'a ChunkPool<M>,
    /// Chunked outboxes for remote workers, indexed by destination.
    remote: &'a mut [Vec<Chunk<M>>],
    /// Same-worker fast path: chunks that skip the exchange entirely.
    local: &'a mut Vec<Chunk<M>>,
    /// Spill-tier handles (`None` = tier disabled, grow-in-place degradation).
    spill: Option<SpillControl<'a, M>>,
    /// Sender-side spill segments per remote destination (parallel to
    /// `remote`); each segment holds a prefix of that (src → dest) stream.
    spill_remote: &'a mut [Vec<SpillSegment>],
    /// Sender-side spill segments for the local fast path.
    spill_local: &'a mut Vec<SpillSegment>,
    cost: u64,
    messages_out: u64,
    local_delivered: u64,
    /// The merged aggregate of the *previous* superstep (Pregel semantics).
    prev_aggregate: &'a A,
    /// This worker's aggregate contribution for the current superstep.
    local_aggregate: &'a mut A,
}

impl<'a, M, A> Context<'a, M, A> {
    /// The global aggregate merged at the end of the previous superstep
    /// (the `A::default()` value during superstep 0).
    #[inline]
    pub fn prev_aggregate(&self) -> &A {
        self.prev_aggregate
    }

    /// Mutable access to this worker's aggregate contribution; the engine
    /// merges all contributions at the superstep barrier with
    /// [`VertexProgram::merge_aggregates`].
    #[inline]
    pub fn aggregate_mut(&mut self) -> &mut A {
        self.local_aggregate
    }
    /// Current superstep (0 = initialization).
    #[inline]
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Id of the executing worker.
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Total number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.partitioner.workers()
    }

    /// The vertex partitioner (vertex → owning worker).
    #[inline]
    pub fn partitioner(&self) -> &HashPartitioner {
        self.partitioner
    }

    /// Sends `msg` to vertex `to`; it is delivered at the next superstep on
    /// the worker owning `to`. Messages to this worker's own vertices take
    /// the local fast path: they go straight into the worker's next inbox
    /// without touching the exchange.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.messages_out += 1;
        let dest = self.partitioner.owner(to);
        if dest == self.worker {
            self.local_delivered += 1;
            push_or_spill(self.pool, self.spill, self.local, self.spill_local, to, msg);
        } else {
            push_or_spill(
                self.pool,
                self.spill,
                &mut self.remote[dest],
                &mut self.spill_remote[dest],
                to,
                msg,
            );
        }
    }

    /// Adds `units` to this worker's cost for the current superstep
    /// (PSgL: the `load(Gpsi)` terms of Equation 2).
    #[inline]
    pub fn add_cost(&mut self, units: u64) {
        self.cost += units;
    }
}

/// Sender-side push with spill-tier degradation. Without a spill tier
/// this is exactly [`push_chunked`]. With one, hitting the live-chunk cap
/// no longer grows the current chunk: the destination's *entire* resident
/// chunk list — a prefix of its (src → dest) stream, so delivery order is
/// untouched — is encoded into one segment, its chunks are released back
/// to the pool (freeing capacity for the whole run), and the send lands
/// in a freshly acquired chunk. Write-side spill failures (ENOSPC, byte
/// budget) fall back to the old grow-in-place path: slower and bigger,
/// never wrong.
#[inline]
fn push_or_spill<M>(
    pool: &ChunkPool<M>,
    spill: Option<SpillControl<'_, M>>,
    list: &mut Vec<Chunk<M>>,
    segs: &mut Vec<SpillSegment>,
    to: VertexId,
    msg: M,
) {
    let Some(sp) = spill else {
        push_chunked(pool, list, to, msg);
        return;
    };
    match list.last_mut() {
        Some(c) if c.len() < pool.capacity() => c.push((to, msg)),
        Some(_) => match pool.try_acquire() {
            Ok(mut next) => {
                next.push((to, msg));
                list.push(next);
            }
            Err(PoolExhausted) => match sp.store.spill(sp.codec, list) {
                Ok(seg) => {
                    segs.push(seg);
                    for c in list.drain(..) {
                        pool.release(c);
                    }
                    // The releases above refilled the free list, so this
                    // acquire is served from it, under the cap.
                    let mut c = pool.acquire();
                    c.push((to, msg));
                    list.push(c);
                }
                // Degradable write failure: grow the full chunk in place,
                // exactly the pre-spill behavior.
                Err(_) => list.last_mut().expect("list checked non-empty").push((to, msg)),
            },
        },
        None => {
            // A destination's first chunk is structural demand: served
            // even over the cap (and metered).
            let mut c = pool.acquire();
            c.push((to, msg));
            list.push(c);
        }
    }
}

/// A vertex-centric program in the Pregel style.
///
/// The engine calls [`VertexProgram::compute`] on every vertex in
/// superstep 0 with no messages (PSgL's initialization phase) and on every
/// vertex with pending messages in later supersteps. The run halts when no
/// messages are in flight.
pub trait VertexProgram: Sync {
    /// Message type exchanged between vertices.
    type Message: Send;
    /// Mutable per-worker state (e.g. local result buffers, the
    /// distribution strategy's local workload view).
    type WorkerState: Send;
    /// Global aggregate merged at each superstep barrier (Pregel
    /// aggregators); use `()` when not needed.
    type Aggregate: Send + Sync + Default;

    /// Creates worker-local state before superstep 0.
    fn create_worker_state(&self, worker: usize) -> Self::WorkerState;

    /// Merges one worker's aggregate contribution into the accumulator.
    /// The default implementation discards contributions (fits the `()`
    /// aggregate).
    fn merge_aggregates(&self, _into: &mut Self::Aggregate, _from: Self::Aggregate) {}

    /// Processes `vertex` with its incoming `messages`.
    ///
    /// `messages` is an engine-owned batch buffer reused across calls: it
    /// holds every message addressed to `vertex` this superstep, and the
    /// program may freely `drain` or consume it — the engine clears it
    /// before the next vertex either way.
    fn compute(
        &self,
        ctx: &mut Context<'_, Self::Message, Self::Aggregate>,
        state: &mut Self::WorkerState,
        vertex: VertexId,
        messages: &mut Vec<Self::Message>,
    );
}

/// Result of a successful BSP run.
#[derive(Debug)]
pub struct BspResult<S, A = ()> {
    /// Final worker states, indexed by worker id.
    pub worker_states: Vec<S>,
    /// The merged aggregate of the final superstep.
    pub final_aggregate: A,
    /// Execution metrics.
    pub metrics: EngineMetrics,
}

/// A captured frontier plus everything needed to restart a run at a
/// superstep boundary with bit-identical results: the undelivered
/// messages (per destination worker, in exchange order), the worker
/// states, the merged aggregate, and the metrics accumulated so far.
///
/// A `ResumePoint` is produced by [`CancelledRun::into_resume_point`]
/// after a soft cancel and consumed by [`run_controlled`] via
/// [`RunControl::resume`]. Serialization (for resume tokens that outlive
/// the process) lives one layer up, where the message type is concrete.
pub struct ResumePoint<M, S, A> {
    /// Superstep at which the resumed run starts (the one that never ran).
    pub superstep: u32,
    /// Undelivered messages for each destination worker, in the exact
    /// order the exchange delivered them.
    pub frontier: Vec<Vec<(VertexId, M)>>,
    /// Worker states as of the capture barrier, indexed by worker id.
    pub worker_states: Vec<S>,
    /// The merged aggregate of the last completed superstep.
    pub aggregate: A,
    /// Per-superstep metrics of the completed prefix; the resumed run
    /// appends to these so the final curves cover the whole run.
    pub prior_supersteps: Vec<SuperstepMetrics>,
    /// Run-level counters of the prefix (pool exhaustion, spill traffic,
    /// live-chunk peak), folded into the resumed run's totals.
    pub carried: CarriedCounters,
}

/// A run ended early by its [`CancelToken`] (or by the message budget with
/// checkpointing enabled).
pub struct CancelledRun<M, S, A> {
    /// Why the run stopped.
    pub reason: CancelReason,
    /// For a soft cancel: the superstep the run would resume at. For a
    /// hard cancel: the superstep that was aborted mid-flight.
    pub superstep: u32,
    /// The undelivered frontier, present only for soft cancels with
    /// [`RunControl::checkpoint`] enabled (hard cancels abort workers
    /// mid-superstep, so no consistent frontier exists).
    pub frontier: Option<Vec<Vec<(VertexId, M)>>>,
    /// Worker states at cancellation — partial results (already-found
    /// instances, counters) remain readable even without a checkpoint.
    pub worker_states: Vec<S>,
    /// The merged aggregate of the last completed superstep.
    pub aggregate: A,
    /// Metrics for the completed prefix; `chunks_outstanding` is zero —
    /// the cancelled path returns every pooled chunk.
    pub metrics: EngineMetrics,
}

impl<M, S, A> CancelledRun<M, S, A> {
    /// Converts a checkpointed cancel into the [`ResumePoint`] that
    /// restarts it; `None` when no frontier was captured (hard cancel).
    pub fn into_resume_point(self) -> Option<ResumePoint<M, S, A>> {
        let frontier = self.frontier?;
        Some(ResumePoint {
            superstep: self.superstep,
            frontier,
            worker_states: self.worker_states,
            aggregate: self.aggregate,
            carried: CarriedCounters::of(&self.metrics),
            prior_supersteps: self.metrics.supersteps,
        })
    }
}

/// Outcome of a controlled run: completion, or a (possibly resumable)
/// cancellation. Engine errors (panic, budget without checkpoint,
/// superstep limit) still surface as [`BspError`].
pub enum RunOutcome<M, S, A> {
    /// The run delivered every message and halted normally.
    Complete(BspResult<S, A>),
    /// The run was cancelled; see [`CancelledRun`].
    Cancelled(CancelledRun<M, S, A>),
}

/// Control inputs for [`run_controlled`]: cancellation, checkpoint
/// capture, and resume. [`RunControl::default`] reproduces the plain
/// [`run_with_executor`] behavior exactly.
pub struct RunControl<'c, M, S, A> {
    /// Token polled at every superstep barrier and every few message
    /// batches inside `compute`.
    pub cancel: Option<&'c CancelToken>,
    /// Capture the live frontier when a soft cancel fires at a barrier
    /// (wall-clock deadline, superstep deadline, or message budget),
    /// enabling exact resume. With this set, a wall-clock deadline lets
    /// the in-flight superstep finish instead of aborting it.
    pub checkpoint: bool,
    /// Restart from a captured frontier instead of superstep 0.
    pub resume: Option<ResumePoint<M, S, A>>,
    /// Delivery seam override: route the superstep exchange through this
    /// implementation (e.g. the cluster's TCP data plane plus a
    /// coordinator-run barrier) instead of the built-in in-process
    /// pointer move. Enables partial partition ownership — the engine
    /// then hosts only [`Exchange::local_partitions`]. See
    /// [`crate::exchange`] for the determinism contract.
    pub exchange: Option<&'c dyn Exchange<M>>,
    /// Receives superstep-boundary snapshots whenever the exchange
    /// directs [`ExchangeDirective::CheckpointAndContinue`]; unused
    /// without [`RunControl::exchange`].
    pub sink: Option<&'c dyn FrontierSink<M, S>>,
    /// Disk spill tier: with this set and `max_live_chunks` capped, a
    /// sender hitting the cap evicts its destination's chunk list to a
    /// per-run temp file instead of growing in place, and over-cap
    /// frontiers are evicted at superstep boundaries and re-admitted when
    /// their superstep runs. Ignored (spill disabled) under a remote
    /// [`RunControl::exchange`], whose frontier already lives off-worker.
    pub spill: Option<SpillControl<'c, M>>,
    /// Structured-trace sink. Events fire at barrier granularity only
    /// (one per superstep, plus rare degradations), so the hot expand
    /// loop never sees a tracing branch. Payloads carry only
    /// schedule-independent counters, keeping seeded event streams
    /// deterministic under the sim executor.
    pub tracer: Option<&'c psgl_obs::Tracer>,
}

impl<M, S, A> Default for RunControl<'_, M, S, A> {
    fn default() -> Self {
        RunControl {
            cancel: None,
            checkpoint: false,
            resume: None,
            exchange: None,
            sink: None,
            spill: None,
            tracer: None,
        }
    }
}

/// Per-worker scratch retained across supersteps so the hot loop reuses
/// buffers instead of reallocating them.
struct WorkerScratch<M> {
    /// Gather buffer: inbox chunks are drained here and stably sorted by
    /// destination vertex before being split into units.
    sort_buf: Vec<(VertexId, M)>,
    /// Per-vertex message batch handed to `compute`.
    batch: Vec<M>,
}

impl<M> WorkerScratch<M> {
    fn new() -> Self {
        WorkerScratch { sort_buf: Vec::new(), batch: Vec::new() }
    }
}

/// Runs `program` over vertices `0..num_vertices` partitioned by
/// `partitioner`, until no messages remain in flight.
///
/// Workers run as scoped OS threads (the production [`ThreadExecutor`]).
/// Each superstep has two phases separated by a barrier: first every
/// worker regroups its inbox chunks into per-vertex units and publishes
/// them to its steal queue; then workers drain their own queues
/// front-first and — when [`BspConfig::steal`] is on — claim units from
/// the back of other workers' queues. With stealing off the engine is
/// deterministic for deterministic programs: each inbox is assembled in
/// source-worker order (the local fast path slotting in at the sender's
/// own position) and grouped with a stable sort.
pub fn run<P: VertexProgram>(
    num_vertices: usize,
    partitioner: &HashPartitioner,
    program: &P,
    config: &BspConfig,
) -> Result<BspResult<P::WorkerState, P::Aggregate>, BspError> {
    run_with_executor(num_vertices, partitioner, program, config, &ThreadExecutor)
}

/// [`run`] with an explicit [`Executor`] — the seam the deterministic
/// simulation harness plugs into. Semantics are identical for every
/// executor that upholds the contract in [`crate::exec`]; only
/// schedule-dependent observables (who stole what, per-worker wall time)
/// may differ.
pub fn run_with_executor<P: VertexProgram>(
    num_vertices: usize,
    partitioner: &HashPartitioner,
    program: &P,
    config: &BspConfig,
    executor: &dyn Executor,
) -> Result<BspResult<P::WorkerState, P::Aggregate>, BspError> {
    let control = RunControl::default();
    match run_controlled(num_vertices, partitioner, program, config, executor, control)? {
        RunOutcome::Complete(res) => Ok(res),
        // Without a token or checkpointing, no cancellation trigger exists.
        RunOutcome::Cancelled(_) => unreachable!("no cancel token was supplied"),
    }
}

/// What [`run_controlled`] yields: a typed outcome (complete or
/// cancelled) over the program's associated types, or an engine error.
pub type ControlledResult<P> = Result<
    RunOutcome<
        <P as VertexProgram>::Message,
        <P as VertexProgram>::WorkerState,
        <P as VertexProgram>::Aggregate,
    >,
    BspError,
>;

/// [`run_with_executor`] plus [`RunControl`]: cooperative cancellation,
/// superstep-boundary checkpoint capture, and resume.
///
/// The token is polled at every superstep barrier and every few message
/// batches inside `compute`. A *hard* cancel (explicit request,
/// disconnect, or a wall-clock deadline without checkpointing) aborts
/// workers mid-superstep and reports [`CancelledRun`] with no frontier; a
/// *soft* cancel (deadline with checkpointing, superstep deadline, or
/// message budget with checkpointing) acts only at a barrier, where the
/// complete undelivered frontier is captured for exact resume. Every
/// terminal path — completion, cancellation, or error — returns all
/// pooled chunks first; the get/put balance assert covers them all.
pub fn run_controlled<P: VertexProgram>(
    num_vertices: usize,
    partitioner: &HashPartitioner,
    program: &P,
    config: &BspConfig,
    executor: &dyn Executor,
    control: RunControl<'_, P::Message, P::WorkerState, P::Aggregate>,
) -> ControlledResult<P> {
    let k = partitioner.workers();
    let start = Instant::now();
    let pool: ChunkPool<P::Message> =
        ChunkPool::with_limit(config.chunk_capacity, config.max_live_chunks);
    let mut metrics = EngineMetrics::default();
    let RunControl { cancel, checkpoint, resume, exchange, sink, spill, tracer } = control;
    // Under a remote exchange the frontier lives off-worker between
    // supersteps already; the local spill tier is disabled.
    let spill = if exchange.is_some() { None } else { spill };
    // The global partition ids this engine instance hosts. Without a
    // remote exchange every partition is local and `slot == partition`;
    // with one, `slot` indexes this process's arrays while partition ids
    // stay global (the `Context` fast path and remote routing key off the
    // global id).
    let locals: Vec<usize> = match exchange {
        Some(x) => {
            assert_eq!(
                x.num_partitions(),
                k,
                "exchange partition count must match the partitioner"
            );
            let locals = x.local_partitions();
            assert!(!locals.is_empty(), "exchange must host at least one partition");
            assert!(
                locals.windows(2).all(|w| w[0] < w[1]) && locals.iter().all(|&p| p < k),
                "local partitions must be ascending and in range"
            );
            locals
        }
        None => (0..k).collect(),
    };
    let l = locals.len();
    let carried: CarriedCounters;
    let (mut states, mut inboxes, mut superstep, mut merged_aggregate) = match resume {
        Some(rp) => {
            assert_eq!(
                rp.worker_states.len(),
                l,
                "resume point was captured with {} workers",
                rp.worker_states.len()
            );
            assert_eq!(rp.frontier.len(), l, "resume frontier must cover every local partition");
            metrics.supersteps = rp.prior_supersteps;
            carried = rp.carried;
            // Re-chunk the flattened frontier in delivery order; unit
            // regrouping flattens and stably re-sorts anyway, so chunk
            // boundaries need not match the original run's.
            let inboxes: Vec<Vec<InboxPart<P::Message>>> = rp
                .frontier
                .into_iter()
                .map(|tuples| {
                    chunk_tuples(&pool, tuples).into_iter().map(InboxPart::Chunk).collect()
                })
                .collect();
            (rp.worker_states, inboxes, rp.superstep, rp.aggregate)
        }
        None => {
            carried = CarriedCounters::default();
            let states: Vec<P::WorkerState> =
                locals.iter().map(|&w| program.create_worker_state(w)).collect();
            (states, (0..l).map(|_| Vec::new()).collect(), 0, P::Aggregate::default())
        }
    };
    // Owned vertex lists for superstep 0, one per local partition slot.
    let owned: Vec<Vec<VertexId>> = partitioner.owned_vertices(num_vertices, &locals);
    let mut scratches: Vec<WorkerScratch<P::Message>> =
        (0..l).map(|_| WorkerScratch::new()).collect();
    // Spill-counter baselines for per-superstep deltas: the store may be
    // shared across slices of one logical run, so deltas start from its
    // current totals rather than zero.
    let mut spill_stall_seen = spill.map_or(0, |sp| sp.store.stall_nanos());
    let mut spill_chunks_seen = spill.map_or(0, |sp| sp.store.spilled_chunks());
    let mut readmitted_seen = spill.map_or(0, |sp| sp.store.readmitted());
    let mut write_failures_seen = spill.map_or(0, |sp| sp.store.write_failures());
    loop {
        if superstep >= config.max_supersteps {
            release_all(&pool, inboxes, spill);
            debug_assert_balanced(&pool);
            return Err(BspError::SuperstepLimitExceeded(superstep));
        }
        let queues: Vec<StealQueue<P::Message>> = (0..l).map(|_| StealQueue::new()).collect();
        let mut worker_results: Vec<Option<(WorkerSuperstepMetrics, P::Aggregate)>> =
            (0..l).map(|_| None).collect();
        // Every chunk-holding buffer a worker touches lives in an
        // engine-owned slot rather than a closure local: the per-worker
        // outboxes, the unit being assembled during prepare, and the unit
        // being processed during compute. An unwinding worker therefore
        // cannot strand acquired chunks — whatever it held stays reachable
        // and `abort_cleanup` returns it to the pool. Remote outboxes stay
        // `k` wide (global destinations) even under partial ownership.
        let mut outboxes: Vec<WorkerOutbox<P::Message>> =
            (0..l).map(|_| ((0..k).map(|_| Vec::new()).collect(), Vec::new())).collect();
        // Sender-side spill segments, parallel to the outboxes: per-slot
        // (per-remote-destination lists, local fast path list). Engine-
        // owned for the same unwind-safety reason as the outboxes.
        let mut spill_outs: Vec<(Vec<Vec<SpillSegment>>, Vec<SpillSegment>)> =
            (0..l).map(|_| ((0..k).map(|_| Vec::new()).collect(), Vec::new())).collect();
        let mut prep_units: Vec<Option<Chunk<P::Message>>> = (0..l).map(|_| None).collect();
        let mut comp_units: Vec<Option<Chunk<P::Message>>> = (0..l).map(|_| None).collect();
        // Panic flags per worker: set inside the task closures (which never
        // unwind, per the executor contract), scanned in worker order after
        // the superstep so the first panicking worker is reported.
        let prep_panics: Vec<AtomicBool> = (0..l).map(|_| AtomicBool::new(false)).collect();
        let comp_panics: Vec<AtomicBool> = (0..l).map(|_| AtomicBool::new(false)).collect();
        // Typed re-admission failures from the prepare phase (spill reads).
        let prep_spill_errors: Vec<Mutex<Option<SpillError>>> =
            (0..l).map(|_| Mutex::new(None)).collect();
        let prev_aggregate = &merged_aggregate;
        let poll = CancelPoll { token: cancel, hard_deadline: !checkpoint };
        let mut tasks: Vec<WorkerTask<'_>> = Vec::with_capacity(l);
        for (
            (((((((slot, state), inbox), scratch), result_slot), outbox), prep_unit), comp_unit),
            spill_out,
        ) in states
            .iter_mut()
            .enumerate()
            .zip(inboxes.iter_mut())
            .zip(scratches.iter_mut())
            .zip(worker_results.iter_mut())
            .zip(outboxes.iter_mut())
            .zip(prep_units.iter_mut())
            .zip(comp_units.iter_mut())
            .zip(spill_outs.iter_mut())
        {
            let worker = locals[slot];
            let owned = &owned[slot];
            let (queues, pool) = (&queues, &pool);
            let (prep_flag, comp_flag) = (&prep_panics[slot], &comp_panics[slot]);
            let spill_err_slot = &prep_spill_errors[slot];
            let WorkerScratch { sort_buf, batch } = scratch;
            // Phase 1: regroup the inbox into units. Panics are trapped
            // here (before the executor's barrier) so a crashing worker
            // cannot strand the others.
            let prepare = Box::new(move || {
                let prep = catch_unwind(AssertUnwindSafe(|| {
                    publish_units(pool, &queues[slot], sort_buf, inbox, prep_unit, spill)
                }));
                match prep {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => *spill_err_slot.lock() = Some(e),
                    Err(_) => prep_flag.store(true, Ordering::SeqCst),
                }
            });
            // Phase 2: process own units, then steal stragglers'. Skipped
            // when this worker's own prepare panicked (mirrors the
            // historical early return after the barrier) or failed to
            // re-admit a spilled segment.
            let compute = Box::new(move || {
                if prep_flag.load(Ordering::SeqCst) || spill_err_slot.lock().is_some() {
                    return;
                }
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_worker::<P>(
                        program,
                        state,
                        worker,
                        slot,
                        superstep,
                        partitioner,
                        owned,
                        pool,
                        queues,
                        config.steal,
                        config.steal_budget,
                        batch,
                        prev_aggregate,
                        outbox,
                        comp_unit,
                        poll,
                        spill,
                        spill_out,
                    )
                }));
                match result {
                    Ok(out) => *result_slot = Some(out),
                    Err(_) => comp_flag.store(true, Ordering::SeqCst),
                }
            });
            tasks.push(WorkerTask { worker: slot, prepare, compute });
        }
        executor.run_superstep(superstep, tasks);
        for slot in 0..l {
            if prep_panics[slot].load(Ordering::SeqCst) || comp_panics[slot].load(Ordering::SeqCst)
            {
                abort_cleanup(
                    &pool,
                    &queues,
                    &mut prep_units,
                    &mut comp_units,
                    &mut outboxes,
                    &mut spill_outs,
                    &mut inboxes,
                    spill,
                );
                debug_assert_balanced(&pool);
                return Err(BspError::WorkerPanicked { worker: locals[slot], superstep });
            }
        }
        // A spilled segment that failed to re-admit is unrecoverable: the
        // disk copy was the only copy. Abort cleanly with the typed error.
        for errs in &prep_spill_errors {
            if let Some(error) = errs.lock().take() {
                abort_cleanup(
                    &pool,
                    &queues,
                    &mut prep_units,
                    &mut comp_units,
                    &mut outboxes,
                    &mut spill_outs,
                    &mut inboxes,
                    spill,
                );
                debug_assert_balanced(&pool);
                return Err(BspError::Spill { superstep, error });
            }
        }
        // A hard cancel may have aborted workers mid-superstep: the
        // superstep's partial output is discarded and every chunk —
        // queued units, in-flight units, outboxes — goes back to the pool
        // before the outcome is reported.
        if let Some(reason) = hard_cancel_reason(cancel, checkpoint) {
            abort_cleanup(
                &pool,
                &queues,
                &mut prep_units,
                &mut comp_units,
                &mut outboxes,
                &mut spill_outs,
                &mut inboxes,
                spill,
            );
            finalize_metrics(&mut metrics, &pool, &carried, spill, start);
            return Ok(RunOutcome::Cancelled(CancelledRun {
                reason,
                superstep,
                frontier: None,
                worker_states: states,
                aggregate: merged_aggregate,
                metrics,
            }));
        }
        // Collect metrics and merge aggregates at the barrier.
        let mut step = SuperstepMetrics {
            workers: Vec::with_capacity(l),
            net: NetSuperstepMetrics::default(),
            spill_stall_nanos: 0,
        };
        let mut next_aggregate = P::Aggregate::default();
        for result in worker_results {
            let (wm, agg) = result.expect("worker result present when no panic");
            step.workers.push(wm);
            program.merge_aggregates(&mut next_aggregate, agg);
        }
        merged_aggregate = next_aggregate;
        let mut outs = outboxes;
        for (slot, (remote, _)) in outs.iter().enumerate() {
            debug_assert!(remote[locals[slot]].is_empty(), "self-sends take the local path");
        }
        // Rebuild inboxes. In-process (no exchange seam): chunks move by
        // pointer; each destination receives sources in worker order, with
        // a worker's locally-delivered chunks slotting in at its own
        // source position — the same order a self-send through the
        // exchange would have produced, keeping runs deterministic. The
        // chaos knob `exchange_shuffle_seed` replaces the canonical source
        // order with a seeded per-destination permutation. A remote
        // exchange must uphold the same global source order (see
        // `crate::exchange`) and additionally runs the coordinator
        // barrier, whose directive can checkpoint or abort the run.
        let (mut new_inboxes, in_flight) = match exchange {
            None => {
                let exchange_start = Instant::now();
                let mut spill_outs = spill_outs;
                let mut new_inboxes: Vec<Vec<InboxPart<P::Message>>> =
                    (0..k).map(|_| Vec::new()).collect();
                for (dest, new_inbox) in new_inboxes.iter_mut().enumerate() {
                    for src in source_order(k, superstep, dest, config.exchange_shuffle_seed) {
                        let (segs, chunks) = if src == dest {
                            (&mut spill_outs[src].1, &mut outs[src].1)
                        } else {
                            (&mut spill_outs[src].0[dest], &mut outs[src].0[dest])
                        };
                        // A sender-side segment always holds a *prefix* of
                        // its (src → dest) stream: spilling drains the
                        // whole resident list, so surviving chunks are
                        // strictly newer than every segment.
                        for seg in segs.drain(..) {
                            new_inbox.push(InboxPart::Spilled(seg));
                        }
                        for c in chunks.drain(..) {
                            new_inbox.push(InboxPart::Chunk(c));
                        }
                    }
                }
                let in_flight: u64 =
                    new_inboxes.iter().flat_map(|b| b.iter()).map(part_tuples).sum();
                step.net.exchange_nanos = exchange_start.elapsed().as_nanos() as u64;
                (new_inboxes, in_flight)
            }
            Some(x) => {
                debug_assert!(
                    spill_outs.iter().all(|(r, l)| l.is_empty() && r.iter().all(Vec::is_empty)),
                    "spill is disabled under a remote exchange"
                );
                let exchange_start = Instant::now();
                let outcome = match x.exchange(superstep, &pool, outs, &step) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        // The exchange released everything it was handed;
                        // nothing else holds chunks at the barrier.
                        debug_assert_balanced(&pool);
                        return Err(BspError::Exchange { superstep, message: e.message });
                    }
                };
                step.net = outcome.net;
                // The remote exchange spans the coordinator barrier; the
                // exchange component is what remains after subtracting the
                // measured barrier wait.
                step.net.exchange_nanos = (exchange_start.elapsed().as_nanos() as u64)
                    .saturating_sub(step.net.barrier_wait_nanos);
                match outcome.directive {
                    ExchangeDirective::Abort(reason) => {
                        release_all(&pool, wrap_resident(outcome.inboxes), spill);
                        metrics.supersteps.push(step);
                        finalize_metrics(&mut metrics, &pool, &carried, spill, start);
                        return Ok(RunOutcome::Cancelled(CancelledRun {
                            reason,
                            superstep: superstep + 1,
                            frontier: None,
                            worker_states: states,
                            aggregate: merged_aggregate,
                            metrics,
                        }));
                    }
                    ExchangeDirective::CheckpointAndContinue => {
                        if let Some(sink) = sink {
                            sink.capture(superstep + 1, &states, &outcome.inboxes);
                        }
                    }
                    ExchangeDirective::Continue => {}
                }
                (wrap_resident(outcome.inboxes), outcome.in_flight)
            }
        };
        if let Some(sp) = spill {
            let stall = sp.store.stall_nanos();
            step.spill_stall_nanos = stall - spill_stall_seen;
            spill_stall_seen = stall;
        }
        if let Some(t) = tracer {
            let (spilled, readmitted, write_failures) = match spill {
                Some(sp) => {
                    let (s, r, w) = (
                        sp.store.spilled_chunks(),
                        sp.store.readmitted(),
                        sp.store.write_failures(),
                    );
                    let d = (s - spill_chunks_seen, r - readmitted_seen, w - write_failures_seen);
                    (spill_chunks_seen, readmitted_seen, write_failures_seen) = (s, r, w);
                    d
                }
                None => (0, 0, 0),
            };
            t.event(
                "superstep",
                &[
                    ("superstep", TraceValue::U64(superstep as u64)),
                    ("messages_out", TraceValue::U64(step.messages_out())),
                    ("in_flight", TraceValue::U64(in_flight)),
                    ("spilled_chunks", TraceValue::U64(spilled)),
                    ("readmitted_chunks", TraceValue::U64(readmitted)),
                ],
            );
            if write_failures > 0 {
                t.event(
                    "spill_write_degraded",
                    &[
                        ("superstep", TraceValue::U64(superstep as u64)),
                        ("failures", TraceValue::U64(write_failures)),
                    ],
                );
            }
        }
        metrics.supersteps.push(step);
        if let Some(budget) = config.message_budget {
            if in_flight > budget {
                if checkpoint {
                    // Budget expiry with checkpointing: the frontier that
                    // broke the budget is exactly what a resumed run (with
                    // a higher budget) needs delivered.
                    let frontier = match flatten_frontier(&pool, new_inboxes, spill) {
                        Ok(f) => f,
                        Err(error) => {
                            debug_assert_balanced(&pool);
                            return Err(BspError::Spill { superstep, error });
                        }
                    };
                    finalize_metrics(&mut metrics, &pool, &carried, spill, start);
                    return Ok(RunOutcome::Cancelled(CancelledRun {
                        reason: CancelReason::Budget,
                        superstep: superstep + 1,
                        frontier: Some(frontier),
                        worker_states: states,
                        aggregate: merged_aggregate,
                        metrics,
                    }));
                }
                release_all(&pool, new_inboxes, spill);
                debug_assert_balanced(&pool);
                return Err(BspError::MessageBudgetExceeded { superstep, in_flight, budget });
            }
        }
        // Soft cancel: the deterministic superstep deadline, a
        // wall-clock deadline with checkpointing, or the scheduler's
        // preemption barrier. Acts only between supersteps, on a
        // complete frontier; a run that just went idle completes
        // normally instead. A deadline outranks a preemption landing on
        // the same barrier — there is no point yielding a slice the
        // owner would immediately cancel. The preempted frontier is
        // captured regardless of the `checkpoint` flag: preemption is
        // only meaningful if the run can resume.
        if in_flight > 0 {
            if let Some(token) = cancel {
                let deadline_due = token.superstep_deadline().is_some_and(|sd| superstep + 1 >= sd)
                    || (checkpoint && token.deadline_passed());
                let preempt_due =
                    !deadline_due && token.preempt_barrier().is_some_and(|sd| superstep + 1 >= sd);
                if deadline_due || preempt_due {
                    let frontier = if checkpoint || preempt_due {
                        match flatten_frontier(&pool, new_inboxes, spill) {
                            Ok(f) => Some(f),
                            Err(error) => {
                                debug_assert_balanced(&pool);
                                return Err(BspError::Spill { superstep, error });
                            }
                        }
                    } else {
                        release_all(&pool, new_inboxes, spill);
                        None
                    };
                    finalize_metrics(&mut metrics, &pool, &carried, spill, start);
                    return Ok(RunOutcome::Cancelled(CancelledRun {
                        reason: if preempt_due {
                            CancelReason::Preempted
                        } else {
                            CancelReason::Deadline
                        },
                        superstep: superstep + 1,
                        frontier,
                        worker_states: states,
                        aggregate: merged_aggregate,
                        metrics,
                    }));
                }
            }
        }
        if in_flight == 0 {
            break;
        }
        // Barrier eviction: the freshly exchanged frontier is the coldest
        // data in the engine — nothing touches it until the next
        // superstep's prepare phase — so while the pool sits over its
        // live-chunk cap, encode runs of resident frontier chunks to disk
        // and release them. Re-admission happens in `publish_units`, in
        // delivery order, with zero pool acquisitions.
        if let (Some(sp), Some(cap)) = (spill, config.max_live_chunks) {
            evict_frontier(&pool, sp, &mut new_inboxes, cap as i64);
        }
        inboxes = new_inboxes;
        superstep += 1;
    }
    finalize_metrics(&mut metrics, &pool, &carried, spill, start);
    // The debug-build assertion above, promoted: a clean completion with
    // unreleased chunks is a leak, and chaos sweeps run in release mode.
    let outstanding = pool.outstanding();
    if outstanding != 0 {
        return Err(BspError::ChunkLeak { outstanding });
    }
    Ok(RunOutcome::Complete(BspResult {
        worker_states: states,
        final_aggregate: merged_aggregate,
        metrics,
    }))
}

/// Worker-side cancellation poll: cheap enough to run every unit and
/// every few message batches. Hard triggers only — soft cancels act at
/// the barrier where a consistent frontier exists.
#[derive(Clone, Copy)]
struct CancelPoll<'a> {
    token: Option<&'a CancelToken>,
    /// Whether a passed wall-clock deadline aborts mid-superstep (no
    /// checkpointing) or waits for the barrier (checkpointing).
    hard_deadline: bool,
}

impl CancelPoll<'_> {
    #[inline]
    fn should_abort(&self) -> bool {
        match self.token {
            None => false,
            Some(t) => t.is_cancelled() || (self.hard_deadline && t.deadline_passed()),
        }
    }
}

/// The hard-cancel triggers checked at the barrier: an explicit cancel
/// (any reason), or a passed wall-clock deadline without checkpointing.
fn hard_cancel_reason(cancel: Option<&CancelToken>, checkpoint: bool) -> Option<CancelReason> {
    let token = cancel?;
    if token.is_cancelled() {
        return Some(token.reason().unwrap_or(CancelReason::Explicit));
    }
    if !checkpoint && token.deadline_passed() {
        return Some(CancelReason::Deadline);
    }
    None
}

/// Drains every chunk still held anywhere in the superstep's machinery
/// back to the pool: steal queues, in-flight unit slots, outboxes, and
/// any inbox chunks a panicking prepare never consumed. Spill segments
/// (inbox parts and sender-side side tables) are discarded — their blobs
/// are deleted now when a store is at hand, and the store's directory
/// guard sweeps anything this misses.
#[allow(clippy::too_many_arguments)]
fn abort_cleanup<M>(
    pool: &ChunkPool<M>,
    queues: &[StealQueue<M>],
    prep_units: &mut [Option<Chunk<M>>],
    comp_units: &mut [Option<Chunk<M>>],
    outboxes: &mut [WorkerOutbox<M>],
    spill_outs: &mut [(Vec<Vec<SpillSegment>>, Vec<SpillSegment>)],
    inboxes: &mut [Vec<InboxPart<M>>],
    spill: Option<SpillControl<'_, M>>,
) {
    for q in queues {
        while let Some(unit) = q.pop_own() {
            pool.release(unit);
        }
    }
    for slot in prep_units.iter_mut().chain(comp_units.iter_mut()) {
        if let Some(unit) = slot.take() {
            pool.release(unit);
        }
    }
    for (remote, local) in outboxes.iter_mut() {
        for dest in remote.iter_mut() {
            for c in dest.drain(..) {
                pool.release(c);
            }
        }
        for c in local.drain(..) {
            pool.release(c);
        }
    }
    for (remote, local) in spill_outs.iter_mut() {
        for seg in remote.iter_mut().flat_map(|d| d.drain(..)).chain(local.drain(..)) {
            discard_segment(seg, spill);
        }
    }
    for inbox in inboxes.iter_mut() {
        // Consumed entries are zero-capacity placeholders; `release`
        // ignores those.
        for part in inbox.drain(..) {
            match part {
                InboxPart::Chunk(c) => pool.release(c),
                InboxPart::Spilled(seg) => discard_segment(seg, spill),
            }
        }
    }
}

/// Deletes an unconsumed segment's blob when a store is available;
/// otherwise the directory guard deletes it with the store.
fn discard_segment<M>(seg: SpillSegment, spill: Option<SpillControl<'_, M>>) {
    if let Some(sp) = spill {
        sp.store.discard(seg);
    }
}

/// Releases every chunk and discards every segment of a set of inboxes
/// (abort paths).
fn release_all<M>(
    pool: &ChunkPool<M>,
    boxes: Vec<Vec<InboxPart<M>>>,
    spill: Option<SpillControl<'_, M>>,
) {
    for inbox in boxes {
        for part in inbox {
            match part {
                InboxPart::Chunk(c) => pool.release(c),
                InboxPart::Spilled(seg) => discard_segment(seg, spill),
            }
        }
    }
}

/// Wraps exchange-delivered inboxes (always resident) as inbox parts.
fn wrap_resident<M>(boxes: Vec<Vec<Chunk<M>>>) -> Vec<Vec<InboxPart<M>>> {
    boxes.into_iter().map(|chunks| chunks.into_iter().map(InboxPart::Chunk).collect()).collect()
}

/// Flattens freshly-exchanged inboxes into per-destination tuple runs
/// (delivery order preserved), releasing resident chunks and re-admitting
/// spilled segments — the checkpointable frontier. On a re-admission
/// failure every remaining chunk is still released (the pool stays
/// balanced) and the typed error is reported after the sweep.
fn flatten_frontier<M>(
    pool: &ChunkPool<M>,
    boxes: Vec<Vec<InboxPart<M>>>,
    spill: Option<SpillControl<'_, M>>,
) -> Result<Vec<Vec<(VertexId, M)>>, SpillError> {
    let mut failed: Option<SpillError> = None;
    let flat = boxes
        .into_iter()
        .map(|parts| {
            let mut tuples = Vec::new();
            for part in parts {
                match part {
                    InboxPart::Chunk(mut c) => {
                        tuples.append(&mut c);
                        pool.release(c);
                    }
                    // When already failing (or with no store) the segment
                    // is just dropped; the directory guard deletes the blob.
                    InboxPart::Spilled(seg) => {
                        if let (true, Some(sp)) = (failed.is_none(), spill) {
                            if let Err(e) = sp.store.readmit(sp.codec, seg, &mut tuples) {
                                failed = Some(e);
                            }
                        }
                    }
                }
            }
            tuples
        })
        .collect();
    match failed {
        None => Ok(flat),
        Some(e) => Err(e),
    }
}

/// Superstep-boundary eviction: while the pool is over its live-chunk
/// cap, encode contiguous runs of resident frontier chunks into spill
/// segments — replaced in place, so delivery order is untouched — and
/// release the chunks. Walks destinations and each destination's parts
/// in delivery order (oldest first): at a barrier the whole frontier is
/// equally cold, and oldest-first makes eviction deterministic and
/// sequential on disk. A write failure stops eviction entirely: the
/// frontier stays resident (degraded, never wrong).
fn evict_frontier<M>(
    pool: &ChunkPool<M>,
    sp: SpillControl<'_, M>,
    inboxes: &mut [Vec<InboxPart<M>>],
    cap: i64,
) {
    for inbox in inboxes.iter_mut() {
        let mut i = 0;
        while i < inbox.len() {
            if pool.outstanding() <= cap {
                return;
            }
            if !matches!(&inbox[i], InboxPart::Chunk(c) if !c.is_empty()) {
                i += 1;
                continue;
            }
            // Collect the contiguous run of non-empty resident chunks
            // starting at `i`; taken slots become zero-capacity
            // placeholders that drain harmlessly later.
            let mut run: Vec<Chunk<M>> = Vec::new();
            let mut j = i;
            while j < inbox.len() {
                match &inbox[j] {
                    InboxPart::Chunk(c) if !c.is_empty() => {
                        let InboxPart::Chunk(c) = std::mem::take(&mut inbox[j]) else {
                            unreachable!("matched a resident chunk above")
                        };
                        run.push(c);
                        j += 1;
                    }
                    _ => break,
                }
            }
            match sp.store.spill(sp.codec, &run) {
                Ok(seg) => {
                    for c in run {
                        pool.release(c);
                    }
                    inbox[i] = InboxPart::Spilled(seg);
                    i = j;
                }
                Err(_) => {
                    // Degradable write failure: restore the run and keep
                    // the whole frontier resident.
                    for (off, c) in run.into_iter().enumerate() {
                        inbox[i + off] = InboxPart::Chunk(c);
                    }
                    return;
                }
            }
        }
    }
}

/// Rebuilds inbox chunks from a flattened frontier on resume.
fn chunk_tuples<M>(pool: &ChunkPool<M>, tuples: Vec<(VertexId, M)>) -> Vec<Chunk<M>> {
    let mut chunks = Vec::new();
    for (v, m) in tuples {
        push_chunked(pool, &mut chunks, v, m);
    }
    chunks
}

/// Finalizes run-level metrics and asserts the pool's get/put balance —
/// called on *every* outcome that reports metrics (complete or
/// cancelled).
fn finalize_metrics<M>(
    metrics: &mut EngineMetrics,
    pool: &ChunkPool<M>,
    carried: &CarriedCounters,
    spill: Option<SpillControl<'_, M>>,
    start: Instant,
) {
    metrics.chunk_allocations = pool.fresh_allocations();
    metrics.chunk_reuses = pool.reuses();
    metrics.pool_exhausted = carried.pool_exhausted + pool.exhausted_events();
    metrics.chunks_outstanding = pool.outstanding();
    metrics.chunks_live_peak = carried.chunks_live_peak.max(pool.peak_outstanding());
    metrics.spill_chunks = carried.spill_chunks;
    metrics.spill_bytes = carried.spill_bytes;
    metrics.spill_stall_nanos = carried.spill_stall_nanos;
    metrics.readmitted_chunks = carried.readmitted_chunks;
    metrics.spill_write_failures = carried.spill_write_failures;
    if let Some(sp) = spill {
        metrics.spill_chunks += sp.store.spilled_chunks();
        metrics.spill_bytes += sp.store.spilled_bytes();
        metrics.spill_stall_nanos += sp.store.stall_nanos();
        metrics.readmitted_chunks += sp.store.readmitted();
        metrics.spill_write_failures += sp.store.write_failures();
    }
    debug_assert_balanced(pool);
    metrics.wall_time = start.elapsed();
}

/// Pool get/put balance: every chunk acquired over the run must have been
/// released by the time the engine reports *any* terminal outcome —
/// completion, cancellation, worker panic, budget abort, or the superstep
/// limit.
fn debug_assert_balanced<M>(pool: &ChunkPool<M>) {
    debug_assert_eq!(
        pool.outstanding(),
        0,
        "chunk pool get/put imbalance at engine shutdown (leak)"
    );
}

/// The order in which destination `dest` consumes source workers during
/// the exchange after `superstep`: canonical `0..k`, or — under the
/// `exchange_shuffle_seed` chaos knob — a seeded Fisher–Yates permutation
/// that differs per `(superstep, dest)` but is fully reproducible.
fn source_order(k: usize, superstep: u32, dest: usize, shuffle: Option<u64>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..k).collect();
    if let Some(seed) = shuffle {
        let mut s = seed ^ ((superstep as u64) << 32) ^ (dest as u64).wrapping_mul(0x9E37_79B9);
        for i in (1..k).rev() {
            s = splitmix64(s);
            let j = (s % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
    }
    order
}

/// SplitMix64 step — a tiny, dependency-free PRNG for the exchange
/// shuffle (statistical quality is irrelevant here; reproducibility is
/// everything).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Phase 1 of a superstep: drains `inbox` chunks into `sort_buf`, stably
/// sorts by destination vertex, splits the run into units at vertex
/// boundaries (a unit may exceed the nominal chunk capacity rather than
/// split one vertex's batch), and publishes them to `queue`.
///
/// The inbox is consumed in place (entries become zero-capacity
/// placeholders) and the unit under assembly lives in the engine-owned
/// `unit_slot`, so a panic anywhere in here leaves every still-acquired
/// chunk reachable for [`abort_cleanup`].
fn publish_units<M>(
    pool: &ChunkPool<M>,
    queue: &StealQueue<M>,
    sort_buf: &mut Vec<(VertexId, M)>,
    inbox: &mut Vec<InboxPart<M>>,
    unit_slot: &mut Option<Chunk<M>>,
    spill: Option<SpillControl<'_, M>>,
) -> Result<(), SpillError> {
    sort_buf.clear();
    for slot in inbox.iter_mut() {
        match std::mem::take(slot) {
            InboxPart::Chunk(mut c) => {
                sort_buf.append(&mut c);
                pool.release(c);
            }
            InboxPart::Spilled(seg) => {
                let sp = spill.expect("spilled inbox part without a spill store");
                sp.store.readmit(sp.codec, seg, sort_buf)?;
            }
        }
    }
    inbox.clear();
    if sort_buf.is_empty() {
        return Ok(());
    }
    sort_buf.sort_by_key(|(v, _)| *v);
    let cap = pool.capacity();
    *unit_slot = Some(pool.acquire());
    for (v, m) in sort_buf.drain(..) {
        let unit = unit_slot.as_mut().expect("unit slot filled above");
        if unit.len() >= cap && unit.last().is_some_and(|(u, _)| *u != v) {
            let full = std::mem::replace(unit, pool.acquire());
            queue.push(full);
        }
        unit.push((v, m));
    }
    queue.push(unit_slot.take().expect("unit slot filled above"));
    Ok(())
}

/// Phase 2: executes one worker for one superstep, filling the
/// engine-owned `outbox` in place; returns its metrics and aggregate
/// contribution. The unit currently being processed sits in the
/// engine-owned `cur` slot so a panicking `compute` cannot strand it.
#[allow(clippy::too_many_arguments)]
fn run_worker<P: VertexProgram>(
    program: &P,
    state: &mut P::WorkerState,
    // `worker` is the global partition id (routing, `Context::worker`);
    // `slot` is the local index into `queues` and the other engine arrays.
    worker: usize,
    slot: usize,
    superstep: u32,
    partitioner: &HashPartitioner,
    owned: &[VertexId],
    pool: &ChunkPool<P::Message>,
    queues: &[StealQueue<P::Message>],
    steal: bool,
    steal_budget: Option<u64>,
    batch: &mut Vec<P::Message>,
    prev_aggregate: &P::Aggregate,
    outbox: &mut WorkerOutbox<P::Message>,
    cur: &mut Option<Chunk<P::Message>>,
    poll: CancelPoll<'_>,
    spill: Option<SpillControl<'_, P::Message>>,
    spill_out: &mut (Vec<Vec<SpillSegment>>, Vec<SpillSegment>),
) -> (WorkerSuperstepMetrics, P::Aggregate) {
    let started = Instant::now();
    let (remote, local) = outbox;
    let (spill_remote, spill_local) = spill_out;
    let mut local_aggregate = P::Aggregate::default();
    let mut ctx = Context {
        superstep,
        worker,
        partitioner,
        pool,
        remote: &mut remote[..],
        local,
        spill,
        spill_remote: &mut spill_remote[..],
        spill_local,
        cost: 0,
        messages_out: 0,
        local_delivered: 0,
        prev_aggregate,
        local_aggregate: &mut local_aggregate,
    };
    let mut active_vertices = 0u64;
    let mut messages_in = 0u64;
    let mut chunks_stolen = 0u64;
    if superstep == 0 {
        for (i, &v) in owned.iter().enumerate() {
            if i & 31 == 0 && poll.should_abort() {
                break;
            }
            active_vertices += 1;
            batch.clear();
            program.compute(&mut ctx, state, v, batch);
        }
    } else {
        loop {
            if poll.should_abort() {
                break;
            }
            let Some(unit) = queues[slot].pop_own() else { break };
            let slot = cur.insert(unit);
            let (a, m) = process_unit::<P>(program, &mut ctx, state, batch, slot, poll);
            active_vertices += a;
            messages_in += m;
            pool.release(cur.take().expect("current unit slot"));
        }
        if steal {
            // All units were published before the barrier, so one sweep
            // over the other queues observes everything still unclaimed
            // (up to the optional per-superstep steal budget).
            let mut budget = steal_budget.unwrap_or(u64::MAX);
            let l = queues.len();
            'sweep: for off in 1..l {
                let victim = (slot + off) % l;
                while budget > 0 {
                    if poll.should_abort() {
                        break 'sweep;
                    }
                    let Some(unit) = queues[victim].pop_steal() else { break };
                    budget -= 1;
                    chunks_stolen += 1;
                    let slot = cur.insert(unit);
                    let (a, m) = process_unit::<P>(program, &mut ctx, state, batch, slot, poll);
                    active_vertices += a;
                    messages_in += m;
                    pool.release(cur.take().expect("current unit slot"));
                }
                if budget == 0 {
                    break 'sweep;
                }
            }
        }
    }
    let tuple_bytes = std::mem::size_of::<(VertexId, P::Message)>() as u64;
    let wm = WorkerSuperstepMetrics {
        active_vertices,
        messages_in,
        messages_out: ctx.messages_out,
        local_delivered: ctx.local_delivered,
        chunks_stolen,
        bytes_exchanged: (ctx.messages_out - ctx.local_delivered) * tuple_bytes,
        cost: ctx.cost,
        elapsed: started.elapsed(),
    };
    (wm, local_aggregate)
}

/// Runs `compute` on every vertex in `unit`, batching each vertex's
/// messages into the reused `batch` buffer. Returns `(vertices, messages)`
/// processed. Polls for a hard cancel every 32 vertex batches.
fn process_unit<P: VertexProgram>(
    program: &P,
    ctx: &mut Context<'_, P::Message, P::Aggregate>,
    state: &mut P::WorkerState,
    batch: &mut Vec<P::Message>,
    unit: &mut Chunk<P::Message>,
    poll: CancelPoll<'_>,
) -> (u64, u64) {
    let messages = unit.len() as u64;
    let mut active = 0u64;
    let mut it = unit.drain(..).peekable();
    while let Some((v, first)) = it.next() {
        if active & 31 == 31 && poll.should_abort() {
            break;
        }
        batch.clear();
        batch.push(first);
        while it.peek().is_some_and(|(u, _)| *u == v) {
            batch.push(it.next().unwrap().1);
        }
        active += 1;
        program.compute(ctx, state, v, batch);
    }
    (active, messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SerialExecutor;
    use parking_lot::Mutex;
    use psgl_graph::generators::erdos_renyi_gnm;
    use psgl_graph::DataGraph;

    /// Min-label propagation: every vertex learns the smallest vertex id in
    /// its connected component. Exercises multi-superstep messaging.
    struct MinLabel<'g> {
        graph: &'g DataGraph,
        labels: Mutex<Vec<VertexId>>,
    }

    impl VertexProgram for MinLabel<'_> {
        type Message = VertexId;
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _worker: usize) {}

        fn compute(
            &self,
            ctx: &mut Context<'_, VertexId>,
            _state: &mut (),
            vertex: VertexId,
            messages: &mut Vec<VertexId>,
        ) {
            ctx.add_cost(1 + messages.len() as u64);
            let current = self.labels.lock()[vertex as usize];
            let best = messages.drain(..).min().map_or(current, |m| m.min(current));
            let improved = best < current || ctx.superstep() == 0;
            if best < current {
                self.labels.lock()[vertex as usize] = best;
            }
            if improved {
                for &n in self.graph.neighbors(vertex) {
                    ctx.send(n, best);
                }
            }
        }
    }

    fn run_min_label(g: &DataGraph, workers: usize) -> Vec<VertexId> {
        let prog = MinLabel { graph: g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(workers);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        assert_eq!(res.worker_states.len(), workers);
        prog.labels.into_inner()
    }

    fn run_min_label_with(
        g: &DataGraph,
        workers: usize,
        config: &BspConfig,
        executor: &dyn Executor,
    ) -> Vec<VertexId> {
        let prog = MinLabel { graph: g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(workers);
        run_with_executor(g.num_vertices(), &p, &prog, config, executor).unwrap();
        prog.labels.into_inner()
    }

    #[test]
    fn min_label_converges_on_two_components() {
        // Two triangles: {0,1,2} and {3,4,5}.
        let g =
            DataGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let labels = run_min_label(&g, 3);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn min_label_matches_across_worker_counts() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let base = run_min_label(&g, 1);
        for k in [2, 4, 7] {
            assert_eq!(run_min_label(&g, k), base, "worker count {k}");
        }
    }

    #[test]
    fn min_label_unaffected_by_stealing_and_tiny_chunks() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let base = run_min_label(&g, 1);
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(4);
        let config = BspConfig { chunk_capacity: 3, steal: true, ..Default::default() };
        run(g.num_vertices(), &p, &prog, &config).unwrap();
        assert_eq!(prog.labels.into_inner(), base);
    }

    #[test]
    fn serial_executor_matches_threaded_run() {
        let g = erdos_renyi_gnm(150, 250, 5).unwrap();
        let base = run_min_label(&g, 3);
        let serial = run_min_label_with(&g, 3, &BspConfig::default(), &SerialExecutor);
        assert_eq!(serial, base);
    }

    #[test]
    fn exchange_shuffle_preserves_results() {
        let g = erdos_renyi_gnm(150, 250, 5).unwrap();
        let base = run_min_label(&g, 4);
        for seed in [1u64, 7, 42] {
            let config = BspConfig { exchange_shuffle_seed: Some(seed), ..Default::default() };
            assert_eq!(
                run_min_label_with(&g, 4, &config, &ThreadExecutor),
                base,
                "shuffle seed {seed}"
            );
        }
    }

    #[test]
    fn capped_pool_degrades_but_stays_correct() {
        let g = erdos_renyi_gnm(150, 250, 5).unwrap();
        let base = run_min_label(&g, 3);
        let config =
            BspConfig { chunk_capacity: 4, max_live_chunks: Some(2), ..Default::default() };
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let res = run(g.num_vertices(), &p, &prog, &config).unwrap();
        assert_eq!(prog.labels.into_inner(), base);
        assert!(res.metrics.pool_exhausted > 0, "the tiny cap must be hit");
        assert_eq!(res.metrics.chunks_outstanding, 0, "clean shutdown releases every chunk");
    }

    #[test]
    fn uncapped_pool_reports_no_exhaustion() {
        let g = erdos_renyi_gnm(100, 150, 3).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(2);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        assert_eq!(res.metrics.pool_exhausted, 0);
        assert_eq!(res.metrics.chunks_outstanding, 0);
    }

    #[test]
    fn metrics_account_every_message() {
        let g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(2);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        let m = &res.metrics;
        assert!(m.superstep_count() >= 2);
        // Messages consumed in superstep s+1 == messages produced in s.
        for s in 0..m.superstep_count() - 1 {
            let out: u64 = m.supersteps[s].workers.iter().map(|w| w.messages_out).sum();
            let consumed: u64 = m.supersteps[s + 1].workers.iter().map(|w| w.messages_in).sum();
            assert_eq!(out, consumed, "superstep {s}");
        }
        // Final superstep emits nothing.
        assert_eq!(m.supersteps.last().unwrap().messages_out(), 0);
        assert!(m.simulated_makespan() > 0);
        assert!(m.total_cost() >= m.simulated_makespan());
    }

    #[test]
    fn local_delivery_ratio_is_one_on_a_single_worker() {
        let g = erdos_renyi_gnm(100, 200, 11).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(1);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        let m = &res.metrics;
        assert!(m.total_messages() > 0);
        assert_eq!(m.total_local_delivered(), m.total_messages());
        assert_eq!(m.local_delivery_ratio(), 1.0);
        assert_eq!(m.total_bytes_exchanged(), 0);
    }

    #[test]
    fn local_and_remote_traffic_partition_the_message_count() {
        let g = erdos_renyi_gnm(200, 400, 7).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        let m = &res.metrics;
        let local = m.total_local_delivered();
        assert!(local > 0, "a 3-way partition keeps some edges worker-local");
        assert!(local < m.total_messages(), "and cuts some edges");
        let tuple = std::mem::size_of::<(VertexId, VertexId)>() as u64;
        assert_eq!(m.total_bytes_exchanged(), (m.total_messages() - local) * tuple);
        let ratio = m.local_delivery_ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn chunk_pool_recycles_across_supersteps() {
        // A long path needs ~n supersteps, so later supersteps run
        // entirely on recycled chunks.
        let edges: Vec<_> = (0..19u32).map(|v| (v, v + 1)).collect();
        let g = DataGraph::from_edges(20, &edges).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(2);
        let res = run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap();
        assert!(res.metrics.chunk_allocations > 0);
        assert!(res.metrics.allocations_avoided() > 0, "supersteps should reuse pooled chunks");
    }

    /// A program that floods `fanout` messages from every vertex once.
    struct Flood {
        fanout: usize,
        n: usize,
    }

    impl VertexProgram for Flood {
        type Message = u8;
        type WorkerState = u64;
        type Aggregate = ();

        fn create_worker_state(&self, _worker: usize) -> u64 {
            0
        }

        fn compute(
            &self,
            ctx: &mut Context<'_, u8>,
            state: &mut u64,
            v: VertexId,
            msgs: &mut Vec<u8>,
        ) {
            *state += msgs.len() as u64;
            if ctx.superstep() == 0 {
                for i in 0..self.fanout {
                    ctx.send(((v as usize + i + 1) % self.n) as VertexId, 0);
                }
            }
        }
    }

    #[test]
    fn message_budget_triggers_simulated_oom() {
        let prog = Flood { fanout: 10, n: 100 };
        let p = HashPartitioner::new(4);
        let config = BspConfig { message_budget: Some(500), ..Default::default() };
        match run(100, &p, &prog, &config) {
            Err(BspError::MessageBudgetExceeded { superstep: 0, in_flight: 1000, budget: 500 }) => {
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        // A budget that fits succeeds and delivers all messages.
        let config = BspConfig { message_budget: Some(1000), ..Default::default() };
        let res = run(100, &p, &prog, &config).unwrap();
        assert_eq!(res.worker_states.iter().sum::<u64>(), 1000);
    }

    /// Superstep 0 funnels every message at vertices owned by worker 0;
    /// superstep 1 burns a little time per unit so other workers have a
    /// window to steal.
    struct Hotspot {
        targets: Vec<VertexId>,
    }

    impl VertexProgram for Hotspot {
        type Message = u8;
        type WorkerState = u64;
        type Aggregate = ();

        fn create_worker_state(&self, _worker: usize) -> u64 {
            0
        }

        fn compute(
            &self,
            ctx: &mut Context<'_, u8>,
            state: &mut u64,
            v: VertexId,
            msgs: &mut Vec<u8>,
        ) {
            *state += msgs.len() as u64;
            if !msgs.is_empty() {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            if ctx.superstep() == 0 {
                let t = self.targets[v as usize % self.targets.len()];
                ctx.send(t, 1);
            }
        }
    }

    #[test]
    fn stealing_claims_straggler_chunks() {
        let n = 256usize;
        let p = HashPartitioner::new(4);
        let targets: Vec<VertexId> = (0..n as VertexId).filter(|&v| p.owner(v) == 0).collect();
        assert!(targets.len() > 10);
        // chunk_capacity 1 → one unit per hot vertex → lots to steal.
        let config = BspConfig { chunk_capacity: 1, steal: true, ..Default::default() };
        let prog = Hotspot { targets: targets.clone() };
        let res = run(n, &p, &prog, &config).unwrap();
        assert_eq!(res.worker_states.iter().sum::<u64>(), n as u64);
        assert!(
            res.metrics.total_chunks_stolen() > 0,
            "idle workers should claim units from the hot worker"
        );
        // With stealing off every unit stays with its owner.
        let config = BspConfig { chunk_capacity: 1, steal: false, ..Default::default() };
        let prog = Hotspot { targets };
        let res = run(n, &p, &prog, &config).unwrap();
        assert_eq!(res.worker_states.iter().sum::<u64>(), n as u64);
        assert_eq!(res.metrics.total_chunks_stolen(), 0);
        // All message work landed on worker 0.
        assert_eq!(res.worker_states[0], n as u64);
    }

    #[test]
    fn steal_budget_caps_per_worker_thefts() {
        let n = 256usize;
        let p = HashPartitioner::new(4);
        let targets: Vec<VertexId> = (0..n as VertexId).filter(|&v| p.owner(v) == 0).collect();
        let config = BspConfig {
            chunk_capacity: 1,
            steal: true,
            steal_budget: Some(2),
            ..Default::default()
        };
        let prog = Hotspot { targets };
        let res = run(n, &p, &prog, &config).unwrap();
        // No messages lost despite the budget, …
        assert_eq!(res.worker_states.iter().sum::<u64>(), n as u64);
        // … and no worker exceeded its per-superstep steal budget.
        for step in &res.metrics.supersteps {
            for (w, wm) in step.workers.iter().enumerate() {
                assert!(wm.chunks_stolen <= 2, "worker {w} stole {}", wm.chunks_stolen);
            }
        }
    }

    struct Panicker;

    impl VertexProgram for Panicker {
        type Message = ();
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _w: usize) {}

        fn compute(&self, _ctx: &mut Context<'_, ()>, _s: &mut (), v: VertexId, _m: &mut Vec<()>) {
            if v == 13 {
                panic!("boom");
            }
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        let p = HashPartitioner::new(3);
        match run(20, &p, &Panicker, &BspConfig::default()) {
            Err(BspError::WorkerPanicked { superstep: 0, worker }) => {
                assert_eq!(worker, p.owner(13));
            }
            other => panic!("expected panic containment, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_is_contained_under_serial_executor() {
        let p = HashPartitioner::new(3);
        match run_with_executor(20, &p, &Panicker, &BspConfig::default(), &SerialExecutor) {
            Err(BspError::WorkerPanicked { superstep: 0, worker }) => {
                assert_eq!(worker, p.owner(13));
            }
            other => panic!("expected panic containment, got {other:?}"),
        }
    }

    /// Endless ping-pong between vertices 0 and 1.
    struct PingPong;

    impl VertexProgram for PingPong {
        type Message = ();
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _w: usize) {}

        fn compute(&self, ctx: &mut Context<'_, ()>, _s: &mut (), v: VertexId, _m: &mut Vec<()>) {
            if v < 2 {
                ctx.send(1 - v, ());
            }
        }
    }

    #[test]
    fn superstep_limit_stops_runaway_programs() {
        let p = HashPartitioner::new(2);
        let config = BspConfig { max_supersteps: 5, ..Default::default() };
        assert!(matches!(run(2, &p, &PingPong, &config), Err(BspError::SuperstepLimitExceeded(5))));
    }

    #[test]
    fn empty_vertex_set_halts_immediately() {
        let p = HashPartitioner::new(2);
        let res = run(0, &p, &Panicker, &BspConfig::default()).unwrap();
        assert_eq!(res.metrics.superstep_count(), 1);
        assert_eq!(res.metrics.total_messages(), 0);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BspError::MessageBudgetExceeded { superstep: 2, in_flight: 10, budget: 5 };
        assert!(e.to_string().contains("out of memory"));
        let e = BspError::WorkerPanicked { worker: 3, superstep: 1 };
        assert!(e.to_string().contains("worker 3"));
    }

    fn controlled<'c, P: VertexProgram>(
        n: usize,
        p: &HashPartitioner,
        prog: &P,
        config: &BspConfig,
        control: RunControl<'c, P::Message, P::WorkerState, P::Aggregate>,
    ) -> RunOutcome<P::Message, P::WorkerState, P::Aggregate> {
        run_controlled(n, p, prog, config, &ThreadExecutor, control).unwrap()
    }

    #[test]
    fn explicit_cancel_aborts_with_a_balanced_pool() {
        let g = erdos_renyi_gnm(150, 250, 5).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let token = CancelToken::new();
        token.cancel(CancelReason::Explicit);
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: false,
            resume: None,
            ..RunControl::default()
        };
        match controlled(g.num_vertices(), &p, &prog, &BspConfig::default(), control) {
            RunOutcome::Cancelled(c) => {
                assert_eq!(c.reason, CancelReason::Explicit);
                assert_eq!(c.superstep, 0);
                assert!(c.frontier.is_none(), "hard cancels capture no frontier");
                assert_eq!(c.metrics.chunks_outstanding, 0);
                assert_eq!(c.worker_states.len(), 3);
            }
            RunOutcome::Complete(_) => panic!("expected cancellation"),
        }
    }

    #[test]
    fn expired_deadline_without_checkpoint_cancels_hard() {
        let edges: Vec<_> = (0..39u32).map(|v| (v, v + 1)).collect();
        let g = DataGraph::from_edges(40, &edges).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let token = CancelToken::with_timeout(std::time::Duration::from_secs(0));
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: false,
            resume: None,
            ..RunControl::default()
        };
        match controlled(g.num_vertices(), &p, &prog, &BspConfig::default(), control) {
            RunOutcome::Cancelled(c) => {
                assert_eq!(c.reason, CancelReason::Deadline);
                assert!(c.frontier.is_none());
                assert_eq!(c.metrics.chunks_outstanding, 0);
            }
            RunOutcome::Complete(_) => panic!("expected deadline cancellation"),
        }
    }

    #[test]
    fn superstep_deadline_checkpoint_and_resume_match_uninterrupted() {
        // A long path needs ~n supersteps, so superstep 3 cuts mid-run.
        let edges: Vec<_> = (0..39u32).map(|v| (v, v + 1)).collect();
        let g = DataGraph::from_edges(40, &edges).unwrap();
        let base = run_min_label(&g, 3);
        let full = {
            let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
            let p = HashPartitioner::new(3);
            run(g.num_vertices(), &p, &prog, &BspConfig::default()).unwrap().metrics
        };
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let token = CancelToken::with_superstep_deadline(3);
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: true,
            resume: None,
            ..RunControl::default()
        };
        let cancelled =
            match controlled(g.num_vertices(), &p, &prog, &BspConfig::default(), control) {
                RunOutcome::Cancelled(c) => c,
                RunOutcome::Complete(_) => panic!("run should hit the superstep deadline"),
            };
        assert_eq!(cancelled.reason, CancelReason::Deadline);
        assert_eq!(cancelled.superstep, 3, "resume superstep equals the deadline");
        assert_eq!(cancelled.metrics.superstep_count(), 3);
        assert_eq!(cancelled.metrics.chunks_outstanding, 0);
        let frontier_msgs: u64 =
            cancelled.frontier.as_ref().unwrap().iter().map(|t| t.len() as u64).sum();
        assert!(frontier_msgs > 0, "mid-run frontier must be non-empty");
        let resume = cancelled.into_resume_point().expect("checkpointed cancel resumes");
        let control = RunControl {
            cancel: None,
            checkpoint: false,
            resume: Some(resume),
            ..RunControl::default()
        };
        let res = match controlled(g.num_vertices(), &p, &prog, &BspConfig::default(), control) {
            RunOutcome::Complete(r) => r,
            RunOutcome::Cancelled(_) => panic!("resumed run should complete"),
        };
        // Bit-identical final labels, and metrics curves that stitch across
        // the seam exactly as the uninterrupted run's.
        assert_eq!(prog.labels.into_inner(), base);
        assert_eq!(res.metrics.superstep_count(), full.superstep_count());
        for s in 0..full.superstep_count() {
            assert_eq!(
                res.metrics.supersteps[s].messages_out(),
                full.supersteps[s].messages_out(),
                "superstep {s} message curve"
            );
        }
        assert_eq!(res.metrics.total_messages(), full.total_messages());
        assert_eq!(res.metrics.total_cost(), full.total_cost());
        assert_eq!(res.metrics.chunks_outstanding, 0);
    }

    #[test]
    fn budget_with_checkpoint_returns_a_resumable_cancel() {
        let prog = Flood { fanout: 10, n: 100 };
        let p = HashPartitioner::new(4);
        let config = BspConfig { message_budget: Some(500), ..Default::default() };
        let control =
            RunControl { cancel: None, checkpoint: true, resume: None, ..RunControl::default() };
        let cancelled = match controlled(100, &p, &prog, &config, control) {
            RunOutcome::Cancelled(c) => c,
            RunOutcome::Complete(_) => panic!("budget must fire"),
        };
        assert_eq!(cancelled.reason, CancelReason::Budget);
        assert_eq!(cancelled.superstep, 1);
        let frontier_msgs: u64 =
            cancelled.frontier.as_ref().unwrap().iter().map(|t| t.len() as u64).sum();
        assert_eq!(frontier_msgs, 1000, "the whole over-budget frontier is captured");
        // Resume under a budget that fits: every message delivered once.
        let resume = cancelled.into_resume_point().unwrap();
        let config = BspConfig { message_budget: Some(2000), ..Default::default() };
        let control = RunControl {
            cancel: None,
            checkpoint: false,
            resume: Some(resume),
            ..RunControl::default()
        };
        match controlled(100, &p, &prog, &config, control) {
            RunOutcome::Complete(r) => {
                assert_eq!(r.worker_states.iter().sum::<u64>(), 1000);
                assert_eq!(r.metrics.chunks_outstanding, 0);
            }
            RunOutcome::Cancelled(_) => panic!("resumed run should complete"),
        }
    }

    /// Floods at superstep 0, then panics while processing messages in
    /// superstep 1 — inboxes, outboxes, and steal queues are all hot when
    /// the worker unwinds.
    struct LatePanicker {
        n: usize,
    }

    impl VertexProgram for LatePanicker {
        type Message = u8;
        type WorkerState = ();
        type Aggregate = ();

        fn create_worker_state(&self, _w: usize) {}

        fn compute(&self, ctx: &mut Context<'_, u8>, _s: &mut (), v: VertexId, _m: &mut Vec<u8>) {
            if ctx.superstep() == 0 {
                for i in 1..=3usize {
                    ctx.send(((v as usize + i) % self.n) as VertexId, 0);
                }
            } else if v == 7 {
                panic!("boom mid-superstep");
            } else {
                // Keep outboxes non-empty at the moment of the panic.
                ctx.send(((v as usize + 1) % self.n) as VertexId, 0);
            }
        }
    }

    #[test]
    fn panic_mid_superstep_keeps_pool_balanced() {
        // In debug builds (the test profile) the engine asserts get/put
        // balance on the abort path, so reaching the Err at all proves no
        // chunk was stranded by the unwinding worker.
        let p = HashPartitioner::new(4);
        let prog = LatePanicker { n: 64 };
        match run(64, &p, &prog, &BspConfig::default()) {
            Err(BspError::WorkerPanicked { superstep: 1, worker }) => {
                assert_eq!(worker, p.owner(7));
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        // Same containment with tiny chunks + stealing (hot steal queues)
        // and under the serial executor.
        let config = BspConfig { chunk_capacity: 2, steal: true, ..Default::default() };
        match run(64, &p, &prog, &config) {
            Err(BspError::WorkerPanicked { superstep: 1, .. }) => {}
            other => panic!("expected contained panic, got {other:?}"),
        }
        match run_with_executor(64, &p, &prog, &BspConfig::default(), &SerialExecutor) {
            Err(BspError::WorkerPanicked { superstep: 1, .. }) => {}
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    #[test]
    fn controlled_run_without_triggers_is_bit_identical() {
        let g = erdos_renyi_gnm(150, 250, 5).unwrap();
        let base = run_min_label(&g, 4);
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(4);
        let token = CancelToken::new();
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: true,
            resume: None,
            ..RunControl::default()
        };
        match controlled(g.num_vertices(), &p, &prog, &BspConfig::default(), control) {
            RunOutcome::Complete(_) => {}
            RunOutcome::Cancelled(_) => panic!("nothing should cancel this run"),
        }
        assert_eq!(prog.labels.into_inner(), base);
    }

    #[test]
    fn source_order_is_identity_without_shuffle_and_a_permutation_with() {
        assert_eq!(source_order(5, 3, 2, None), vec![0, 1, 2, 3, 4]);
        for dest in 0..5 {
            let order = source_order(5, 3, dest, Some(99));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "must be a permutation");
            // Deterministic per (superstep, dest, seed).
            assert_eq!(order, source_order(5, 3, dest, Some(99)));
        }
    }

    // ── spill tier ──────────────────────────────────────────────────────

    use crate::spill::{SpillConfig, SpillFaults, SpillReader};

    struct VertexIdCodec;

    impl SpillCodec<VertexId> for VertexIdCodec {
        fn encode(&self, msg: &VertexId, out: &mut Vec<u8>) {
            out.extend_from_slice(&msg.to_le_bytes());
        }
        fn decode(&self, r: &mut SpillReader<'_>) -> Result<VertexId, SpillError> {
            r.u32("min-label message")
        }
    }

    fn run_min_label_spilling(
        g: &DataGraph,
        workers: usize,
        config: &BspConfig,
        store: &SpillStore,
    ) -> (Vec<VertexId>, EngineMetrics) {
        let prog = MinLabel { graph: g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(workers);
        let control = RunControl {
            spill: Some(SpillControl { store, codec: &VertexIdCodec }),
            ..RunControl::default()
        };
        let res =
            match run_controlled(g.num_vertices(), &p, &prog, config, &ThreadExecutor, control)
                .unwrap()
            {
                RunOutcome::Complete(r) => r,
                RunOutcome::Cancelled(_) => panic!("nothing cancels this run"),
            };
        (prog.labels.into_inner(), res.metrics)
    }

    #[test]
    fn spilling_capped_run_matches_uncapped_results() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let base = run_min_label(&g, 3);
        let config =
            BspConfig { chunk_capacity: 4, max_live_chunks: Some(8), ..Default::default() };
        let store = SpillStore::create(&SpillConfig::in_temp()).unwrap();
        let (labels, m) = run_min_label_spilling(&g, 3, &config, &store);
        assert_eq!(labels, base, "spilling must not change any label");
        assert!(m.spill_chunks > 0, "the tiny cap must force eviction");
        assert_eq!(m.readmitted_chunks, m.spill_chunks, "every segment comes back");
        assert!(m.spill_bytes > 0);
        assert!(m.chunks_live_peak > 0);
        assert_eq!(m.chunks_outstanding, 0, "clean shutdown releases every chunk");
        assert_eq!(store.live_bytes(), 0, "no blobs outlive the run");
    }

    #[test]
    fn spill_read_fault_aborts_with_a_typed_error() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let config =
            BspConfig { chunk_capacity: 4, max_live_chunks: Some(8), ..Default::default() };
        let faults = SpillFaults { corrupt_read: true, ..SpillFaults::default() };
        let store = SpillStore::create(&SpillConfig { faults, ..SpillConfig::in_temp() }).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let control = RunControl {
            spill: Some(SpillControl { store: &store, codec: &VertexIdCodec }),
            ..RunControl::default()
        };
        match run_controlled(g.num_vertices(), &p, &prog, &config, &ThreadExecutor, control) {
            Err(BspError::Spill { error: SpillError::Corrupt { .. }, .. }) => {}
            Err(e) => panic!("wrong error for a corrupt read: {e}"),
            Ok(_) => panic!("corrupt spill blobs must abort the run"),
        }
        assert_eq!(store.live_bytes(), 0, "the abort path discards every blob");
    }

    #[test]
    fn spill_write_failure_degrades_to_resident_execution() {
        let g = erdos_renyi_gnm(200, 300, 9).unwrap();
        let base = run_min_label(&g, 3);
        let config =
            BspConfig { chunk_capacity: 4, max_live_chunks: Some(8), ..Default::default() };
        let faults = SpillFaults { fail_write_after_bytes: Some(0), ..SpillFaults::default() };
        let store = SpillStore::create(&SpillConfig { faults, ..SpillConfig::in_temp() }).unwrap();
        let (labels, m) = run_min_label_spilling(&g, 3, &config, &store);
        assert_eq!(labels, base, "a full disk degrades the run, never corrupts it");
        assert_eq!(m.spill_chunks, 0, "no write ever succeeded");
        assert!(m.pool_exhausted > 0, "the run still grew past the cap in place");
    }

    #[test]
    fn deadline_without_checkpoint_discards_spilled_frontier() {
        let edges: Vec<_> = (0..39u32).map(|v| (v, v + 1)).collect();
        let g = DataGraph::from_edges(40, &edges).unwrap();
        let config =
            BspConfig { chunk_capacity: 2, max_live_chunks: Some(4), ..Default::default() };
        let store = SpillStore::create(&SpillConfig::in_temp()).unwrap();
        let dir = store.dir().to_path_buf();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let token = CancelToken::with_superstep_deadline(3);
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: false,
            spill: Some(SpillControl { store: &store, codec: &VertexIdCodec }),
            ..RunControl::default()
        };
        match controlled(g.num_vertices(), &p, &prog, &config, control) {
            RunOutcome::Cancelled(c) => {
                assert_eq!(c.reason, CancelReason::Deadline);
                assert!(c.frontier.is_none(), "hard cancels capture no frontier");
                assert!(c.metrics.spill_chunks > 0, "the frontier was spilling when cut");
                assert_eq!(c.metrics.chunks_outstanding, 0);
            }
            RunOutcome::Complete(_) => panic!("expected deadline cancellation"),
        }
        assert_eq!(store.live_bytes(), 0, "discarded segments delete their blobs");
        drop(store);
        assert!(!dir.exists(), "the spill directory dies with the store");
    }

    #[test]
    fn checkpoint_resume_with_spill_matches_uninterrupted() {
        let edges: Vec<_> = (0..39u32).map(|v| (v, v + 1)).collect();
        let g = DataGraph::from_edges(40, &edges).unwrap();
        let base = run_min_label(&g, 3);
        let config =
            BspConfig { chunk_capacity: 2, max_live_chunks: Some(4), ..Default::default() };
        let store = SpillStore::create(&SpillConfig::in_temp()).unwrap();
        let prog = MinLabel { graph: &g, labels: Mutex::new(g.vertices().collect()) };
        let p = HashPartitioner::new(3);
        let token = CancelToken::with_superstep_deadline(3);
        let control = RunControl {
            cancel: Some(&token),
            checkpoint: true,
            spill: Some(SpillControl { store: &store, codec: &VertexIdCodec }),
            ..RunControl::default()
        };
        let cancelled = match controlled(g.num_vertices(), &p, &prog, &config, control) {
            RunOutcome::Cancelled(c) => c,
            RunOutcome::Complete(_) => panic!("run should hit the superstep deadline"),
        };
        let spilled_before_cut = cancelled.metrics.spill_chunks;
        assert!(spilled_before_cut > 0, "the frontier was spilling when cut");
        assert_eq!(store.live_bytes(), 0, "checkpoint capture re-admits every segment");
        let resume = cancelled.into_resume_point().expect("checkpointed cancel resumes");
        let control = RunControl {
            resume: Some(resume),
            spill: Some(SpillControl { store: &store, codec: &VertexIdCodec }),
            ..RunControl::default()
        };
        match controlled(g.num_vertices(), &p, &prog, &config, control) {
            RunOutcome::Complete(r) => {
                assert_eq!(r.metrics.chunks_outstanding, 0);
                assert!(
                    r.metrics.spill_chunks >= spilled_before_cut,
                    "carried counters keep the pre-cut spill volume"
                );
            }
            RunOutcome::Cancelled(_) => panic!("resumed run should complete"),
        }
        assert_eq!(prog.labels.into_inner(), base);
    }
}

#[cfg(test)]
mod aggregator_tests {
    use super::*;

    /// Sums active-vertex counts globally; vertices read the previous
    /// superstep's total.
    struct CountActive {
        observed: parking_lot::Mutex<Vec<u64>>,
    }

    impl VertexProgram for CountActive {
        type Message = ();
        type WorkerState = ();
        type Aggregate = u64;

        fn create_worker_state(&self, _w: usize) {}

        fn merge_aggregates(&self, into: &mut u64, from: u64) {
            *into += from;
        }

        fn compute(
            &self,
            ctx: &mut Context<'_, (), u64>,
            _s: &mut (),
            v: VertexId,
            _m: &mut Vec<()>,
        ) {
            if v == 0 {
                self.observed.lock().push(*ctx.prev_aggregate());
            }
            *ctx.aggregate_mut() += 1;
            // Two message-driven rounds: all vertices ping vertex 0 once.
            if ctx.superstep() == 0 {
                ctx.send(0, ());
            }
        }
    }

    #[test]
    fn aggregates_merge_across_workers_with_pregel_semantics() {
        let n = 20;
        let prog = CountActive { observed: parking_lot::Mutex::new(Vec::new()) };
        let p = psgl_graph::partition::HashPartitioner::new(4);
        let result = run(n, &p, &prog, &BspConfig::default()).unwrap();
        // Superstep 0: all 20 vertices active; superstep 1: only vertex 0.
        assert_eq!(result.final_aggregate, 1);
        // Vertex 0 saw the default (0) in superstep 0 and the merged 20 in
        // superstep 1.
        assert_eq!(*prog.observed.lock(), vec![0, 20]);
        // Stealing preserves the one-compute-call-per-vertex contract.
        let prog = CountActive { observed: parking_lot::Mutex::new(Vec::new()) };
        let config = BspConfig { chunk_capacity: 2, steal: true, ..Default::default() };
        let result = run(n, &p, &prog, &config).unwrap();
        assert_eq!(result.final_aggregate, 1);
        assert_eq!(*prog.observed.lock(), vec![0, 20]);
    }
}
