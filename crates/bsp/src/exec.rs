//! The scheduler seam: who runs a superstep's worker tasks, and in what
//! order.
//!
//! [`engine::run`](crate::engine::run) packages each superstep as one
//! [`WorkerTask`] per worker — a *prepare* closure (phase 1: regroup the
//! inbox into steal-queue units) and a *compute* closure (phase 2: run the
//! vertex program over the units) — and hands the batch to an
//! [`Executor`]. Production uses [`ThreadExecutor`] (one scoped OS thread
//! per worker, a real [`std::sync::Barrier`] between the phases); the
//! simulation harness in `crates/sim` substitutes a seeded, virtual-time
//! scheduler that runs the same closures single-threaded in an
//! adversarial but fully reproducible order.
//!
//! # Executor contract
//!
//! - Every `prepare` closure must finish before any `compute` closure
//!   starts (the phase barrier): `compute` may pop units from *other*
//!   workers' steal queues, which are only complete once every `prepare`
//!   has run.
//! - Every closure must be invoked exactly once; `run_superstep` returns
//!   only after all of them have returned. The closures never unwind —
//!   the engine catches panics internally and reports them through its
//!   own channel — so executors need no unwind handling of their own.
//! - Closures may be run on any thread(s), sequentially or in parallel,
//!   in any per-phase order. The engine guarantees correctness (exact
//!   instance counts, message conservation) for *every* legal schedule;
//!   only scheduling-dependent metrics (who stole what, per-worker
//!   elapsed time) vary.

use std::sync::Barrier;

/// A boxed phase closure for one worker; see the module docs for the
/// execution contract.
pub type TaskFn<'a> = Box<dyn FnOnce() + Send + 'a>;

/// One worker's share of a superstep: the phase-1 and phase-2 closures.
pub struct WorkerTask<'a> {
    /// Worker id (index into the engine's worker arrays).
    pub worker: usize,
    /// Phase 1: drain + regroup the inbox, publish steal-queue units.
    pub prepare: TaskFn<'a>,
    /// Phase 2: run the vertex program over own (and stolen) units.
    pub compute: TaskFn<'a>,
}

/// Drives the worker tasks of one superstep. See the module docs for the
/// contract implementations must uphold.
pub trait Executor: Sync {
    /// Runs every task of `superstep` to completion, with barrier
    /// semantics between the prepare and compute phases.
    fn run_superstep(&self, superstep: u32, tasks: Vec<WorkerTask<'_>>);
}

/// The production executor: one scoped OS thread per worker, phases
/// separated by a [`Barrier`]. This reproduces the engine's historical
/// threading exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadExecutor;

impl Executor for ThreadExecutor {
    fn run_superstep(&self, _superstep: u32, tasks: Vec<WorkerTask<'_>>) {
        let barrier = Barrier::new(tasks.len());
        crossbeam::thread::scope(|scope| {
            for task in tasks {
                let barrier = &barrier;
                scope.spawn(move |_| {
                    (task.prepare)();
                    barrier.wait();
                    (task.compute)();
                });
            }
        })
        .expect("executor worker threads never unwind");
    }
}

/// A trivial deterministic executor: runs all prepares then all computes
/// on the calling thread, in worker-id order. Useful for debugging engine
/// issues without threads in the picture; `crates/sim` builds its seeded
/// chaos scheduler on the same trait.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_superstep(&self, _superstep: u32, tasks: Vec<WorkerTask<'_>>) {
        let mut computes = Vec::with_capacity(tasks.len());
        for task in tasks {
            (task.prepare)();
            computes.push(task.compute);
        }
        for compute in computes {
            compute();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Both executors must uphold the phase barrier: every prepare runs
    /// before any compute.
    fn check_barrier(executor: &dyn Executor) {
        let k = 4;
        let prepared = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        let tasks: Vec<WorkerTask<'_>> = (0..k)
            .map(|worker| WorkerTask {
                worker,
                prepare: Box::new(|| {
                    prepared.fetch_add(1, Ordering::SeqCst);
                }),
                compute: Box::new(|| {
                    if prepared.load(Ordering::SeqCst) != k {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                }),
            })
            .collect();
        executor.run_superstep(0, tasks);
        assert_eq!(prepared.load(Ordering::SeqCst), k);
        assert_eq!(violations.load(Ordering::SeqCst), 0, "compute ran before all prepares");
    }

    #[test]
    fn thread_executor_upholds_phase_barrier() {
        check_barrier(&ThreadExecutor);
    }

    #[test]
    fn serial_executor_upholds_phase_barrier() {
        check_barrier(&SerialExecutor);
    }
}
