//! Per-worker, per-superstep execution metrics.
//!
//! These numbers are the raw material for the paper's evaluation: Figure 5
//! plots per-worker runtime, Figure 8 plots makespan against worker count,
//! and Section 4.4's Equation 3 defines the total cost
//! `T = Σ_s max_k L_{ks}` that the engine reports as
//! [`EngineMetrics::simulated_makespan`].

use std::time::Duration;

/// Metrics for one worker within one superstep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerSuperstepMetrics {
    /// Vertices the program ran on.
    pub active_vertices: u64,
    /// Messages consumed this superstep (own units plus stolen ones).
    pub messages_in: u64,
    /// Messages produced this superstep.
    pub messages_out: u64,
    /// Of `messages_out`, how many were addressed to this worker's own
    /// vertices and took the local fast path past the exchange.
    pub local_delivered: u64,
    /// Message units this worker claimed from *other* workers' queues.
    pub chunks_stolen: u64,
    /// Bytes of `(VertexId, M)` tuples this worker handed to the exchange
    /// (locally-delivered messages excluded).
    pub bytes_exchanged: u64,
    /// User-reported cost units (PSgL: Equation 2's `load(Gpsi)` sums).
    pub cost: u64,
    /// Wall-clock time the worker spent computing.
    pub elapsed: Duration,
}

/// Network-plane counters for one superstep's exchange. All zero for the
/// in-process engine (whose "exchange" is a pointer move); populated by a
/// remote [`Exchange`](crate::exchange::Exchange) such as the cluster's
/// TCP data plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSuperstepMetrics {
    /// Data frames written to peers.
    pub frames_sent: u64,
    /// Data frames read from peers.
    pub frames_received: u64,
    /// Wire bytes written (frame headers + payloads + checksums).
    pub wire_bytes_sent: u64,
    /// Wire bytes read.
    pub wire_bytes_received: u64,
    /// Nanoseconds spent blocked at the superstep barrier waiting for the
    /// coordinator's proceed signal (after local work and sends finished).
    pub barrier_wait_nanos: u64,
    /// Nanoseconds spent inside the exchange itself — flushing outboxes,
    /// routing chunks, draining peer frames (in-process: the routing loop).
    pub exchange_nanos: u64,
}

impl NetSuperstepMetrics {
    /// Accumulates another set of counters into this one (coordinator-side
    /// aggregation across workers).
    pub fn merge(&mut self, other: &NetSuperstepMetrics) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.wire_bytes_received += other.wire_bytes_received;
        self.barrier_wait_nanos += other.barrier_wait_nanos;
        self.exchange_nanos += other.exchange_nanos;
    }
}

/// Metrics for one superstep across all workers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperstepMetrics {
    /// Indexed by worker id.
    pub workers: Vec<WorkerSuperstepMetrics>,
    /// Network counters for this superstep's exchange (all zero in
    /// process-local runs).
    pub net: NetSuperstepMetrics,
    /// Nanoseconds the spill tier stalled this superstep (eviction writes
    /// plus boundary re-admission reads); 0 without a spill tier.
    pub spill_stall_nanos: u64,
}

impl SuperstepMetrics {
    /// Total messages produced in this superstep.
    pub fn messages_out(&self) -> u64 {
        self.workers.iter().map(|w| w.messages_out).sum()
    }

    /// Maximum per-worker cost (the superstep's contribution to Equation
    /// 3's makespan).
    pub fn max_cost(&self) -> u64 {
        self.workers.iter().map(|w| w.cost).max().unwrap_or(0)
    }

    /// Total cost over all workers.
    pub fn total_cost(&self) -> u64 {
        self.workers.iter().map(|w| w.cost).sum()
    }
}

/// Counters carried across a checkpoint/resume (or preemption) seam so
/// run-level metrics stay cumulative over every slice of a logical run.
/// Captured from the prefix's [`EngineMetrics`] by
/// [`CancelledRun::into_resume_point`](crate::CancelledRun::into_resume_point)
/// and folded back in when the resumed slice finalizes its metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CarriedCounters {
    /// Pool-exhaustion events of the completed prefix.
    pub pool_exhausted: u64,
    /// Chunks the prefix evicted to the disk spill tier.
    pub spill_chunks: u64,
    /// Framed spill bytes the prefix wrote.
    pub spill_bytes: u64,
    /// Nanoseconds the prefix stalled in spill I/O.
    pub spill_stall_nanos: u64,
    /// Chunks' worth of spilled tuples the prefix re-admitted.
    pub readmitted_chunks: u64,
    /// Spill writes of the prefix that failed and degraded to resident
    /// growth.
    pub spill_write_failures: u64,
    /// High-water mark of live pool chunks over the prefix.
    pub chunks_live_peak: i64,
}

impl CarriedCounters {
    /// Snapshots the carryable run-level counters of finalized metrics —
    /// what a resumed slice (or a serialized checkpoint) folds back in.
    pub fn of(m: &EngineMetrics) -> CarriedCounters {
        CarriedCounters {
            pool_exhausted: m.pool_exhausted,
            spill_chunks: m.spill_chunks,
            spill_bytes: m.spill_bytes,
            spill_stall_nanos: m.spill_stall_nanos,
            readmitted_chunks: m.readmitted_chunks,
            spill_write_failures: m.spill_write_failures,
            chunks_live_peak: m.chunks_live_peak,
        }
    }
}

/// Metrics for a whole BSP run.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Total wall-clock time of the run (including barriers).
    pub wall_time: Duration,
    /// Message chunks the pool had to allocate fresh.
    pub chunk_allocations: u64,
    /// Message chunks served from the pool's free list.
    pub chunk_reuses: u64,
    /// Times the pool's live-chunk cap forced a sender onto a degraded
    /// path (spill to disk, or grow-in-place when no spill tier is
    /// configured). Always 0 when `max_live_chunks` is unset.
    pub pool_exhausted: u64,
    /// Pool get/put imbalance at shutdown (acquires minus releases);
    /// 0 on a clean run — anything else is a chunk leak or double-free.
    pub chunks_outstanding: i64,
    /// High-water mark of simultaneously live pool chunks over the run —
    /// the message plane's true peak memory footprint.
    pub chunks_live_peak: i64,
    /// Pool chunks whose contents were evicted to the disk spill tier.
    pub spill_chunks: u64,
    /// Framed bytes written to spill blobs.
    pub spill_bytes: u64,
    /// Nanoseconds spent blocked inside spill writes and re-admission
    /// reads.
    pub spill_stall_nanos: u64,
    /// Chunks' worth of spilled tuples decoded back in at superstep
    /// boundaries.
    pub readmitted_chunks: u64,
    /// Spill writes that failed (budget, ENOSPC, I/O error) and degraded
    /// the sender to resident growth — served, but no longer bounded.
    pub spill_write_failures: u64,
}

impl EngineMetrics {
    /// Number of supersteps executed.
    pub fn superstep_count(&self) -> usize {
        self.supersteps.len()
    }

    /// Equation 3: `T = Σ_s max_k L_{ks}` — the simulated makespan in cost
    /// units, hardware-independent.
    pub fn simulated_makespan(&self) -> u64 {
        self.supersteps.iter().map(|s| s.max_cost()).sum()
    }

    /// Total cost across all workers and supersteps (the "work").
    pub fn total_cost(&self) -> u64 {
        self.supersteps.iter().map(|s| s.total_cost()).sum()
    }

    /// Per-worker cost summed over supersteps — Figure 5's x-axis data.
    pub fn per_worker_cost(&self) -> Vec<u64> {
        let workers = self.supersteps.first().map_or(0, |s| s.workers.len());
        let mut totals = vec![0u64; workers];
        for s in &self.supersteps {
            for (k, w) in s.workers.iter().enumerate() {
                totals[k] += w.cost;
            }
        }
        totals
    }

    /// Total messages exchanged over the run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages_out()).sum()
    }

    /// Messages that took the same-worker fast path over the run.
    pub fn total_local_delivered(&self) -> u64 {
        self.supersteps.iter().flat_map(|s| &s.workers).map(|w| w.local_delivered).sum()
    }

    /// Fraction of all messages delivered without crossing the exchange
    /// (0.0 for a run that sent no messages).
    pub fn local_delivery_ratio(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            return 0.0;
        }
        self.total_local_delivered() as f64 / total as f64
    }

    /// Message units claimed by non-owner workers over the run.
    pub fn total_chunks_stolen(&self) -> u64 {
        self.supersteps.iter().flat_map(|s| &s.workers).map(|w| w.chunks_stolen).sum()
    }

    /// Bytes of message tuples that crossed the exchange over the run.
    pub fn total_bytes_exchanged(&self) -> u64 {
        self.supersteps.iter().flat_map(|s| &s.workers).map(|w| w.bytes_exchanged).sum()
    }

    /// Chunk allocations avoided by pool recycling (= chunks served from
    /// the free list).
    pub fn allocations_avoided(&self) -> u64 {
        self.chunk_reuses
    }

    /// Data frames written to peers over the run (0 in-process).
    pub fn total_frames_sent(&self) -> u64 {
        self.supersteps.iter().map(|s| s.net.frames_sent).sum()
    }

    /// Data frames read from peers over the run (0 in-process).
    pub fn total_frames_received(&self) -> u64 {
        self.supersteps.iter().map(|s| s.net.frames_received).sum()
    }

    /// Wire bytes written over the run (0 in-process).
    pub fn total_wire_bytes_sent(&self) -> u64 {
        self.supersteps.iter().map(|s| s.net.wire_bytes_sent).sum()
    }

    /// Wire bytes read over the run (0 in-process).
    pub fn total_wire_bytes_received(&self) -> u64 {
        self.supersteps.iter().map(|s| s.net.wire_bytes_received).sum()
    }

    /// Nanoseconds spent blocked at superstep barriers over the run.
    pub fn total_barrier_wait_nanos(&self) -> u64 {
        self.supersteps.iter().map(|s| s.net.barrier_wait_nanos).sum()
    }

    /// Per-superstep barrier wait, in nanoseconds.
    pub fn barrier_wait_per_superstep(&self) -> Vec<u64> {
        self.supersteps.iter().map(|s| s.net.barrier_wait_nanos).collect()
    }

    /// Per-superstep compute time (sum of worker elapsed), in nanoseconds.
    pub fn compute_nanos_per_superstep(&self) -> Vec<u64> {
        self.supersteps
            .iter()
            .map(|s| s.workers.iter().map(|w| w.elapsed.as_nanos() as u64).sum())
            .collect()
    }

    /// Per-superstep exchange time, in nanoseconds.
    pub fn exchange_nanos_per_superstep(&self) -> Vec<u64> {
        self.supersteps.iter().map(|s| s.net.exchange_nanos).collect()
    }

    /// Per-superstep spill-tier stall, in nanoseconds.
    pub fn spill_stall_per_superstep(&self) -> Vec<u64> {
        self.supersteps.iter().map(|s| s.spill_stall_nanos).collect()
    }

    /// Max/mean imbalance of total per-worker cost (1.0 = perfect balance).
    pub fn cost_imbalance(&self) -> f64 {
        let per_worker = self.per_worker_cost();
        let total: u64 = per_worker.iter().sum();
        if total == 0 || per_worker.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / per_worker.len() as f64;
        *per_worker.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm(cost: u64, mi: u64, mo: u64) -> WorkerSuperstepMetrics {
        WorkerSuperstepMetrics { cost, messages_in: mi, messages_out: mo, ..Default::default() }
    }

    #[test]
    fn makespan_is_sum_of_maxima() {
        let m = EngineMetrics {
            supersteps: vec![
                SuperstepMetrics { workers: vec![wm(10, 0, 5), wm(4, 0, 3)], ..Default::default() },
                SuperstepMetrics { workers: vec![wm(1, 5, 0), wm(7, 3, 0)], ..Default::default() },
            ],
            ..Default::default()
        };
        assert_eq!(m.simulated_makespan(), 10 + 7);
        assert_eq!(m.total_cost(), 22);
        assert_eq!(m.per_worker_cost(), vec![11, 11]);
        assert_eq!(m.total_messages(), 8);
        assert_eq!(m.cost_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let m = EngineMetrics {
            supersteps: vec![SuperstepMetrics {
                workers: vec![wm(30, 0, 0), wm(10, 0, 0)],
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(m.cost_imbalance(), 1.5);
    }

    #[test]
    fn message_plane_counters_aggregate() {
        let w = |out, local, stolen, bytes| WorkerSuperstepMetrics {
            messages_out: out,
            local_delivered: local,
            chunks_stolen: stolen,
            bytes_exchanged: bytes,
            ..Default::default()
        };
        let m = EngineMetrics {
            supersteps: vec![
                SuperstepMetrics {
                    workers: vec![w(10, 4, 0, 48), w(6, 6, 0, 0)],
                    ..Default::default()
                },
                SuperstepMetrics {
                    workers: vec![w(0, 0, 3, 0), w(4, 2, 0, 16)],
                    ..Default::default()
                },
            ],
            chunk_allocations: 5,
            chunk_reuses: 7,
            ..Default::default()
        };
        assert_eq!(m.total_local_delivered(), 12);
        assert_eq!(m.local_delivery_ratio(), 12.0 / 20.0);
        assert_eq!(m.total_chunks_stolen(), 3);
        assert_eq!(m.total_bytes_exchanged(), 64);
        assert_eq!(m.allocations_avoided(), 7);
        // A run with no traffic reports a zero ratio, not NaN.
        assert_eq!(EngineMetrics::default().local_delivery_ratio(), 0.0);
    }

    #[test]
    fn empty_run_is_degenerate_but_safe() {
        let m = EngineMetrics::default();
        assert_eq!(m.simulated_makespan(), 0);
        assert_eq!(m.cost_imbalance(), 1.0);
        assert!(m.per_worker_cost().is_empty());
    }
}
