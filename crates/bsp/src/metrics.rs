//! Per-worker, per-superstep execution metrics.
//!
//! These numbers are the raw material for the paper's evaluation: Figure 5
//! plots per-worker runtime, Figure 8 plots makespan against worker count,
//! and Section 4.4's Equation 3 defines the total cost
//! `T = Σ_s max_k L_{ks}` that the engine reports as
//! [`EngineMetrics::simulated_makespan`].

use std::time::Duration;

/// Metrics for one worker within one superstep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerSuperstepMetrics {
    /// Vertices the program ran on.
    pub active_vertices: u64,
    /// Messages consumed this superstep.
    pub messages_in: u64,
    /// Messages produced this superstep.
    pub messages_out: u64,
    /// User-reported cost units (PSgL: Equation 2's `load(Gpsi)` sums).
    pub cost: u64,
    /// Wall-clock time the worker spent computing.
    pub elapsed: Duration,
}

/// Metrics for one superstep across all workers.
#[derive(Clone, Debug, Default)]
pub struct SuperstepMetrics {
    /// Indexed by worker id.
    pub workers: Vec<WorkerSuperstepMetrics>,
}

impl SuperstepMetrics {
    /// Total messages produced in this superstep.
    pub fn messages_out(&self) -> u64 {
        self.workers.iter().map(|w| w.messages_out).sum()
    }

    /// Maximum per-worker cost (the superstep's contribution to Equation
    /// 3's makespan).
    pub fn max_cost(&self) -> u64 {
        self.workers.iter().map(|w| w.cost).max().unwrap_or(0)
    }

    /// Total cost over all workers.
    pub fn total_cost(&self) -> u64 {
        self.workers.iter().map(|w| w.cost).sum()
    }
}

/// Metrics for a whole BSP run.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Total wall-clock time of the run (including barriers).
    pub wall_time: Duration,
}

impl EngineMetrics {
    /// Number of supersteps executed.
    pub fn superstep_count(&self) -> usize {
        self.supersteps.len()
    }

    /// Equation 3: `T = Σ_s max_k L_{ks}` — the simulated makespan in cost
    /// units, hardware-independent.
    pub fn simulated_makespan(&self) -> u64 {
        self.supersteps.iter().map(|s| s.max_cost()).sum()
    }

    /// Total cost across all workers and supersteps (the "work").
    pub fn total_cost(&self) -> u64 {
        self.supersteps.iter().map(|s| s.total_cost()).sum()
    }

    /// Per-worker cost summed over supersteps — Figure 5's x-axis data.
    pub fn per_worker_cost(&self) -> Vec<u64> {
        let workers = self.supersteps.first().map_or(0, |s| s.workers.len());
        let mut totals = vec![0u64; workers];
        for s in &self.supersteps {
            for (k, w) in s.workers.iter().enumerate() {
                totals[k] += w.cost;
            }
        }
        totals
    }

    /// Total messages exchanged over the run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages_out()).sum()
    }

    /// Max/mean imbalance of total per-worker cost (1.0 = perfect balance).
    pub fn cost_imbalance(&self) -> f64 {
        let per_worker = self.per_worker_cost();
        let total: u64 = per_worker.iter().sum();
        if total == 0 || per_worker.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / per_worker.len() as f64;
        *per_worker.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm(cost: u64, mi: u64, mo: u64) -> WorkerSuperstepMetrics {
        WorkerSuperstepMetrics { cost, messages_in: mi, messages_out: mo, ..Default::default() }
    }

    #[test]
    fn makespan_is_sum_of_maxima() {
        let m = EngineMetrics {
            supersteps: vec![
                SuperstepMetrics { workers: vec![wm(10, 0, 5), wm(4, 0, 3)] },
                SuperstepMetrics { workers: vec![wm(1, 5, 0), wm(7, 3, 0)] },
            ],
            wall_time: Duration::ZERO,
        };
        assert_eq!(m.simulated_makespan(), 10 + 7);
        assert_eq!(m.total_cost(), 22);
        assert_eq!(m.per_worker_cost(), vec![11, 11]);
        assert_eq!(m.total_messages(), 8);
        assert_eq!(m.cost_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let m = EngineMetrics {
            supersteps: vec![SuperstepMetrics { workers: vec![wm(30, 0, 0), wm(10, 0, 0)] }],
            wall_time: Duration::ZERO,
        };
        assert_eq!(m.cost_imbalance(), 1.5);
    }

    #[test]
    fn empty_run_is_degenerate_but_safe() {
        let m = EngineMetrics::default();
        assert_eq!(m.simulated_makespan(), 0);
        assert_eq!(m.cost_imbalance(), 1.0);
        assert!(m.per_worker_cost().is_empty());
    }
}
