//! The delivery seam: who moves a superstep's outboxes into the next
//! superstep's inboxes.
//!
//! The in-process engine's exchange is a pointer move — chunks hop from
//! sender outboxes to receiver inboxes in a deterministic source order
//! (see `engine.rs`). A distributed runtime needs the same moment in the
//! superstep to do real work: serialize remote chunks onto sockets, wait
//! at a coordinator-run barrier, learn the *global* in-flight count, and
//! obey coordinator directives (checkpoint, abort). [`Exchange`] is that
//! seam.
//!
//! An `Exchange` also introduces *partial partition ownership*: the
//! engine hosts only the partitions in [`Exchange::local_partitions`],
//! while [`Context::send`](crate::Context::send) keeps routing by the
//! *global* partitioner — messages for non-local partitions land in
//! remote outboxes that the exchange ships elsewhere.
//!
//! Determinism contract: an implementation must assemble each local
//! inbox in **global source-partition order** (the same order the
//! in-process exchange uses), and must report the **global** in-flight
//! count so every participant makes identical halt/budget decisions.
//! Under that contract a run split across processes is bit-identical to
//! the single-process run.

use crate::cancel::CancelReason;
use crate::chunk::{Chunk, ChunkPool};
use crate::metrics::{NetSuperstepMetrics, SuperstepMetrics};

/// One worker's sent messages awaiting exchange: per-destination remote
/// outboxes (indexed by *global* partition id) plus the locally-delivered
/// fast-path chunks (messages the worker sent to its own vertices).
pub type WorkerOutbox<M> = (Vec<Vec<Chunk<M>>>, Vec<Chunk<M>>);

/// What the run should do after an exchange, as decided by whoever runs
/// the barrier (the coordinator, for a remote exchange).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeDirective {
    /// Proceed into the next superstep.
    Continue,
    /// Proceed, but first let the [`FrontierSink`] capture a
    /// superstep-boundary checkpoint of the states and the new inboxes.
    CheckpointAndContinue,
    /// Stop the run: the coordinator cancelled it (deadline, explicit
    /// cancel, or a peer failure triggering rollback).
    Abort(CancelReason),
}

/// A completed exchange: the next superstep's inboxes plus the global
/// barrier outcome.
pub struct ExchangeOutcome<M> {
    /// Next inboxes, one per local partition, in
    /// [`Exchange::local_partitions`] order. Each inbox must be assembled
    /// in global source-partition order.
    pub inboxes: Vec<Vec<Chunk<M>>>,
    /// Messages in flight across the *whole* run (all partitions, local
    /// and remote) — the halt/budget decisions key off this, so it must
    /// be identical at every participant.
    pub in_flight: u64,
    /// Network counters for this exchange (frames, wire bytes, barrier
    /// wait).
    pub net: NetSuperstepMetrics,
    /// What the barrier decided.
    pub directive: ExchangeDirective,
}

/// A failed exchange: a peer socket died, a frame failed to decode, or
/// the coordinator vanished. The implementation must release every chunk
/// it was handed (or acquired) back to the pool before returning this.
#[derive(Debug)]
pub struct ExchangeError {
    /// Superstep whose exchange failed.
    pub superstep: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exchange failed after superstep {}: {}", self.superstep, self.message)
    }
}

impl std::error::Error for ExchangeError {}

/// Moves one superstep's outboxes to the next superstep's inboxes —
/// locally or across a wire — and runs the superstep barrier.
///
/// Invoked by the engine once per superstep, after every worker task has
/// finished and per-worker metrics are merged. `outs` holds one
/// [`WorkerOutbox`] per local partition (in [`Self::local_partitions`]
/// order); the implementation consumes them, releasing every chunk to
/// `pool` once its tuples are shipped, and returns inboxes built from
/// pool chunks. `step` carries the local partitions' metrics for the
/// superstep just executed, for barrier reporting.
pub trait Exchange<M>: Sync {
    /// Total number of logical partitions in the run (the global
    /// partitioner's worker count).
    fn num_partitions(&self) -> usize;

    /// The global partition ids this engine instance hosts, ascending.
    /// The in-process engine behaves as if this were `0..num_partitions`.
    fn local_partitions(&self) -> Vec<usize>;

    /// Performs the exchange after `superstep` and waits out the barrier.
    fn exchange(
        &self,
        superstep: u32,
        pool: &ChunkPool<M>,
        outs: Vec<WorkerOutbox<M>>,
        step: &SuperstepMetrics,
    ) -> Result<ExchangeOutcome<M>, ExchangeError>;
}

/// Captures superstep-boundary checkpoints when an [`Exchange`] directs
/// [`ExchangeDirective::CheckpointAndContinue`].
///
/// `states` and `frontier` are indexed by local partition slot (the
/// [`Exchange::local_partitions`] order); `superstep` is the one the
/// restored run would resume at (the one about to execute). The sink
/// borrows — it must copy what it keeps, the run continues with these
/// exact states and inboxes.
pub trait FrontierSink<M, S>: Sync {
    /// Captures one superstep-boundary snapshot.
    fn capture(&self, superstep: u32, states: &[S], frontier: &[Vec<Chunk<M>>]);
}
