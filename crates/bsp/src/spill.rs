//! Disk spill tier for the pooled message plane: out-of-core frontiers.
//!
//! When the chunk pool hits its live-chunk cap, the engine used to degrade
//! by growing chunks in place — bounded allocation count, unbounded bytes.
//! A [`SpillStore`] replaces that: cold frontier chunks are encoded into
//! framed blobs (`"PSGLSPL1" | payload | FxHash checksum`, the same
//! discipline as the checkpoint shards) inside a per-run temp directory,
//! their pool chunks are released for reuse, and the spilled tuples are
//! re-admitted — decoded straight into the receiving worker's sort buffer,
//! acquiring no pool chunk — at the next superstep boundary. Delivery
//! order is preserved exactly (a segment always holds a *prefix* of its
//! destination's per-source stream), so spilling never changes results.
//!
//! Failure polarity is asymmetric by design:
//!
//! - **write failures degrade** — ENOSPC, a hard [`SpillConfig::max_spill_bytes`]
//!   cap ([`SpillError::Exhausted`]), or an injected fault leave the chunks
//!   resident and fall back to the old grow-in-place path: slower and
//!   bigger, never wrong;
//! - **read failures abort** — a truncated or corrupt blob means tuples
//!   the run already committed to deliver are gone, so re-admission
//!   surfaces a typed error and the engine cancels cleanly instead of
//!   answering from a damaged frontier.
//!
//! Dropping the store removes its directory, so every exit path — finish,
//! cancel, preempt, panic-unwind through the owner — deletes the run's
//! spill files.

use parking_lot::Mutex;
use psgl_graph::hash::FxHasher;
use psgl_graph::VertexId;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Magic prefix of every spill blob.
pub const SPILL_MAGIC: &[u8; 8] = b"PSGLSPL1";

/// Serial number for per-run spill directories (process-wide, so two
/// concurrent runs in one process never collide).
static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Typed spill failures. Write-side variants are recoverable (the caller
/// keeps the chunks resident); read-side variants are not — the frontier
/// on disk is the only copy of those tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillError {
    /// The underlying filesystem operation failed (includes injected
    /// ENOSPC faults).
    Io(String),
    /// The blob does not start with [`SPILL_MAGIC`].
    NotASpillBlob,
    /// The blob ended before the field being decoded ("short read").
    Truncated {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// The trailing FxHash checksum did not match the payload.
    Corrupt {
        /// Checksum recorded in the blob.
        expected: u64,
        /// Checksum recomputed over the payload.
        got: u64,
    },
    /// The decoded tuple count disagrees with the segment's manifest.
    CountMismatch {
        /// Tuples the segment was recorded to hold.
        expected: u64,
        /// Tuples the blob actually decoded to.
        got: u64,
    },
    /// The hard spill-byte budget is exhausted; the write was refused and
    /// the caller must keep its chunks resident.
    Exhausted {
        /// Spill bytes currently on disk.
        spilled: u64,
        /// The configured [`SpillConfig::max_spill_bytes`] cap.
        cap: u64,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O: {e}"),
            SpillError::NotASpillBlob => write!(f, "spill blob lacks the PSGLSPL1 magic"),
            SpillError::Truncated { what } => write!(f, "spill blob truncated reading {what}"),
            SpillError::Corrupt { expected, got } => write!(
                f,
                "spill blob checksum mismatch: recorded {expected:016x}, computed {got:016x}"
            ),
            SpillError::CountMismatch { expected, got } => {
                write!(f, "spill segment decoded {got} tuples, manifest says {expected}")
            }
            SpillError::Exhausted { spilled, cap } => {
                write!(f, "spill budget exhausted: {spilled} bytes on disk, cap {cap}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

/// Whether this error may be absorbed by keeping the chunks resident
/// (write side) or must abort the run (read side).
impl SpillError {
    /// True for write-side failures the engine degrades through.
    pub fn is_degradable(&self) -> bool {
        matches!(self, SpillError::Io(_) | SpillError::Exhausted { .. })
    }
}

/// Message serialization for spill blobs. The engine is generic over its
/// message type, so the embedder supplies the byte layout; `psgl-core`
/// implements this for `Gpsi` with the checkpoint tuple layout.
pub trait SpillCodec<M>: Sync {
    /// Appends `msg`'s encoding to `out`.
    fn encode(&self, msg: &M, out: &mut Vec<u8>);
    /// Decodes one message from `r`, consuming exactly what
    /// [`SpillCodec::encode`] wrote.
    fn decode(&self, r: &mut SpillReader<'_>) -> Result<M, SpillError>;
}

/// Bounds-checked little-endian cursor over a spill payload. Every read
/// past the end is a typed [`SpillError::Truncated`], never a panic.
pub struct SpillReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SpillReader<'a> {
    /// Wraps `data` with the cursor at the start.
    pub fn new(data: &'a [u8]) -> Self {
        SpillReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SpillError> {
        if self.remaining() < n {
            return Err(SpillError::Truncated { what });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SpillError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, SpillError> {
        Ok(u16::from_le_bytes(self.bytes(2, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SpillError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SpillError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self, what: &'static str) -> Result<u128, SpillError> {
        Ok(u128::from_le_bytes(self.bytes(16, what)?.try_into().unwrap()))
    }
}

/// Injectable disk-pressure faults, for the chaos harness. All default to
/// "no fault"; production configs never set them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillFaults {
    /// Fail every write once this many bytes have been written by the
    /// store (simulated ENOSPC mid-spill).
    pub fail_write_after_bytes: Option<u64>,
    /// Sleep this many microseconds per spilled chunk (slow disk); the
    /// time lands in the `spill_stall` counter like real I/O would.
    pub slow_write_per_chunk_us: u64,
    /// Flip one payload byte before decoding on re-admission (corrupt
    /// read — must produce a typed checksum error, never a wrong answer).
    pub corrupt_read: bool,
    /// Drop the blob's tail before decoding (short read — must produce a
    /// typed truncation error).
    pub short_read: bool,
}

impl SpillFaults {
    /// Whether any fault is armed.
    pub fn any(&self) -> bool {
        *self != SpillFaults::default()
    }
}

/// Configuration of the spill tier, threaded from `PsglConfig` /
/// `RunnerHooks` down to the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory the per-run spill directory is created under
    /// (`None` = the system temp directory).
    pub dir: Option<PathBuf>,
    /// Hard cap on bytes simultaneously on disk; beyond it writes fail
    /// with [`SpillError::Exhausted`] and the engine degrades to resident
    /// retention (`None` = unbounded).
    pub max_spill_bytes: Option<u64>,
    /// Fault injection (chaos harness only).
    pub faults: SpillFaults,
}

impl SpillConfig {
    /// A spill tier in the system temp directory with no byte cap.
    pub fn in_temp() -> SpillConfig {
        SpillConfig::default()
    }
}

/// One spilled run of tuples: the on-disk replacement for `chunks` pool
/// chunks holding `tuples` messages for a single destination. Segments
/// are single-use — re-admission consumes them.
#[derive(Debug)]
pub struct SpillSegment {
    path: PathBuf,
    /// Pool chunks this segment displaced.
    pub chunks: u64,
    /// Tuples encoded in the blob.
    pub tuples: u64,
    /// Framed size on disk.
    pub bytes: u64,
}

/// Per-run spill directory plus counters. Creating the store makes the
/// directory; dropping it removes the directory and everything in it —
/// the cleanup guard the engine relies on for every exit path.
pub struct SpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
    max_spill_bytes: Option<u64>,
    faults: SpillFaults,
    /// Bytes currently on disk (written minus re-admitted/discarded).
    live_bytes: AtomicU64,
    /// Bytes ever written (drives the injected-ENOSPC fault).
    written_total: AtomicU64,
    spill_chunks: AtomicU64,
    spill_bytes: AtomicU64,
    readmitted_chunks: AtomicU64,
    stall_nanos: AtomicU64,
    exhausted_events: AtomicU64,
    write_failures: AtomicU64,
    /// Serializes filesystem mutation; counters stay lock-free.
    io: Mutex<()>,
}

impl SpillStore {
    /// Creates the per-run spill directory under `config.dir` (or the
    /// system temp directory) and returns the store guarding it.
    pub fn create(config: &SpillConfig) -> Result<SpillStore, SpillError> {
        let base = config.dir.clone().unwrap_or_else(std::env::temp_dir);
        let serial = DIR_SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir = base.join(format!("psgl-spill-{}-{serial}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| SpillError::Io(e.to_string()))?;
        Ok(SpillStore {
            dir,
            next_id: AtomicU64::new(0),
            max_spill_bytes: config.max_spill_bytes,
            faults: config.faults,
            live_bytes: AtomicU64::new(0),
            written_total: AtomicU64::new(0),
            spill_chunks: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            readmitted_chunks: AtomicU64::new(0),
            stall_nanos: AtomicU64::new(0),
            exhausted_events: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            io: Mutex::new(()),
        })
    }

    /// The run's spill directory (exists while the store lives).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Encodes every tuple of `chunks` (in order) into one framed blob
    /// and writes it. On success the caller releases the chunks back to
    /// the pool; on failure (budget, injected ENOSPC, real I/O error) the
    /// caller keeps them resident — the tuples were not consumed.
    pub fn spill<M>(
        &self,
        codec: &dyn SpillCodec<M>,
        chunks: &[Chunkish<M>],
    ) -> Result<SpillSegment, SpillError> {
        let start = Instant::now();
        let result = self.spill_inner(codec, chunks);
        self.stall_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if result.is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn spill_inner<M>(
        &self,
        codec: &dyn SpillCodec<M>,
        chunks: &[Chunkish<M>],
    ) -> Result<SpillSegment, SpillError> {
        let tuples: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let mut payload = Vec::with_capacity(16 + chunks.len() * 64);
        payload.extend_from_slice(&tuples.to_le_bytes());
        for chunk in chunks {
            for (to, msg) in chunk.iter() {
                payload.extend_from_slice(&to.to_le_bytes());
                codec.encode(msg, &mut payload);
            }
        }
        let frame = seal(&payload);
        let frame_len = frame.len() as u64;
        if let Some(cap) = self.max_spill_bytes {
            let live = self.live_bytes.load(Ordering::Relaxed);
            if live + frame_len > cap {
                self.exhausted_events.fetch_add(1, Ordering::Relaxed);
                return Err(SpillError::Exhausted { spilled: live, cap });
            }
        }
        if let Some(limit) = self.faults.fail_write_after_bytes {
            if self.written_total.load(Ordering::Relaxed) + frame_len > limit {
                return Err(SpillError::Io(format!(
                    "no space left on device (injected after {limit} bytes)"
                )));
            }
        }
        if self.faults.slow_write_per_chunk_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(
                self.faults.slow_write_per_chunk_us * chunks.len() as u64,
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("seg-{id}.spl"));
        {
            let _guard = self.io.lock();
            std::fs::write(&path, &frame).map_err(|e| SpillError::Io(e.to_string()))?;
        }
        self.written_total.fetch_add(frame_len, Ordering::Relaxed);
        self.live_bytes.fetch_add(frame_len, Ordering::Relaxed);
        self.spill_chunks.fetch_add(chunks.len() as u64, Ordering::Relaxed);
        self.spill_bytes.fetch_add(frame_len, Ordering::Relaxed);
        Ok(SpillSegment { path, chunks: chunks.len() as u64, tuples, bytes: frame_len })
    }

    /// Reads `seg` back, verifies the frame, decodes every tuple into
    /// `out` (preserving order), and deletes the blob. Acquires no pool
    /// chunk — re-admission lands in the worker's sort buffer.
    pub fn readmit<M>(
        &self,
        codec: &dyn SpillCodec<M>,
        seg: SpillSegment,
        out: &mut Vec<(VertexId, M)>,
    ) -> Result<(), SpillError> {
        let start = Instant::now();
        let result = self.readmit_inner(codec, &seg, out);
        self.stall_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // The blob is consumed either way: on success the tuples moved to
        // `out`; on failure the run aborts and the directory guard will
        // sweep whatever this misses.
        let _guard = self.io.lock();
        if std::fs::remove_file(&seg.path).is_ok() {
            self.live_bytes.fetch_sub(
                seg.bytes.min(self.live_bytes.load(Ordering::Relaxed)),
                Ordering::Relaxed,
            );
        }
        if result.is_ok() {
            self.readmitted_chunks.fetch_add(seg.chunks, Ordering::Relaxed);
        }
        result
    }

    fn readmit_inner<M>(
        &self,
        codec: &dyn SpillCodec<M>,
        seg: &SpillSegment,
        out: &mut Vec<(VertexId, M)>,
    ) -> Result<(), SpillError> {
        let mut frame = std::fs::read(&seg.path).map_err(|e| SpillError::Io(e.to_string()))?;
        if self.faults.short_read {
            // Clip below the minimum header+checksum size so the fault
            // deterministically reads as `Truncated`. (A clip that lands
            // mid-payload instead surfaces as `Corrupt` — the checksum
            // no longer lines up — which the proptest covers; both are
            // typed, non-degradable read errors.)
            frame.truncate(SPILL_MAGIC.len() + 7);
        }
        if self.faults.corrupt_read && frame.len() > SPILL_MAGIC.len() + 8 {
            let mid = SPILL_MAGIC.len() + (frame.len() - SPILL_MAGIC.len() - 8) / 2;
            frame[mid] ^= 0x40;
        }
        let payload = unseal(&frame)?;
        let mut r = SpillReader::new(payload);
        let count = r.u64("tuple count")?;
        if count != seg.tuples {
            return Err(SpillError::CountMismatch { expected: seg.tuples, got: count });
        }
        out.reserve(count as usize);
        for _ in 0..count {
            let to = r.u32("tuple vertex")?;
            let msg = codec.decode(&mut r)?;
            out.push((to, msg));
        }
        if r.remaining() != 0 {
            return Err(SpillError::CountMismatch {
                expected: seg.tuples,
                got: seg.tuples + 1, // trailing garbage: more data than the manifest
            });
        }
        Ok(())
    }

    /// Deletes an unconsumed segment (abort/cleanup paths).
    pub fn discard(&self, seg: SpillSegment) {
        let _guard = self.io.lock();
        if std::fs::remove_file(&seg.path).is_ok() {
            let bytes = seg.bytes.min(self.live_bytes.load(Ordering::Relaxed));
            self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Pool chunks whose contents were written to disk.
    pub fn spilled_chunks(&self) -> u64 {
        self.spill_chunks.load(Ordering::Relaxed)
    }

    /// Framed bytes ever written.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill_bytes.load(Ordering::Relaxed)
    }

    /// Chunks' worth of tuples read back and delivered.
    pub fn readmitted(&self) -> u64 {
        self.readmitted_chunks.load(Ordering::Relaxed)
    }

    /// Wall time spent inside spill writes and re-admission reads.
    pub fn stall_nanos(&self) -> u64 {
        self.stall_nanos.load(Ordering::Relaxed)
    }

    /// Times the hard byte budget refused a spill ([`SpillError::Exhausted`]).
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted_events.load(Ordering::Relaxed)
    }

    /// Spill writes that failed for any reason (budget, injected ENOSPC,
    /// real I/O error) and sent the sender down a degraded resident path.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Bytes currently on disk.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort: the directory is per-run and uniquely named, so a
        // failed removal leaks only temp files, never correctness.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// What [`SpillStore::spill`] accepts: anything chunk-shaped. (An alias
/// keeps the signature readable without re-exporting `Chunk` here.)
pub type Chunkish<M> = crate::chunk::Chunk<M>;

/// Frames `payload` as `magic | payload | FxHash(payload)` — the same
/// seal discipline as the checkpoint formats.
fn seal(payload: &[u8]) -> Vec<u8> {
    let mut hasher = FxHasher::default();
    hasher.write(payload);
    let mut framed = Vec::with_capacity(SPILL_MAGIC.len() + payload.len() + 8);
    framed.extend_from_slice(SPILL_MAGIC);
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&hasher.finish().to_le_bytes());
    framed
}

/// Validates magic + trailing checksum, returning the payload slice.
fn unseal(data: &[u8]) -> Result<&[u8], SpillError> {
    if data.len() < SPILL_MAGIC.len() + 8 {
        return Err(SpillError::Truncated { what: "frame header/checksum" });
    }
    if &data[..SPILL_MAGIC.len()] != SPILL_MAGIC {
        return Err(SpillError::NotASpillBlob);
    }
    let (payload, tail) = data[SPILL_MAGIC.len()..].split_at(data.len() - SPILL_MAGIC.len() - 8);
    let expected = u64::from_le_bytes(tail.try_into().unwrap());
    let mut hasher = FxHasher::default();
    hasher.write(payload);
    let got = hasher.finish();
    if got != expected {
        return Err(SpillError::Corrupt { expected, got });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    /// Test codec: fixed-width u64 messages.
    struct U64Codec;
    impl SpillCodec<u64> for U64Codec {
        fn encode(&self, msg: &u64, out: &mut Vec<u8>) {
            out.extend_from_slice(&msg.to_le_bytes());
        }
        fn decode(&self, r: &mut SpillReader<'_>) -> Result<u64, SpillError> {
            r.u64("u64 message")
        }
    }

    fn store() -> SpillStore {
        SpillStore::create(&SpillConfig::in_temp()).unwrap()
    }

    fn chunk_of(tuples: &[(VertexId, u64)]) -> Chunkish<u64> {
        tuples.to_vec()
    }

    #[test]
    fn round_trip_preserves_order_and_deletes_the_blob() {
        let store = store();
        let a = chunk_of(&[(3, 30), (1, 10), (2, 20)]);
        let b = chunk_of(&[(9, 90)]);
        let seg = store.spill(&U64Codec, &[a, b]).unwrap();
        assert_eq!((seg.chunks, seg.tuples), (2, 4));
        let path = seg.path.clone();
        assert!(path.exists());
        let mut out = Vec::new();
        store.readmit(&U64Codec, seg, &mut out).unwrap();
        assert_eq!(out, vec![(3, 30), (1, 10), (2, 20), (9, 90)]);
        assert!(!path.exists(), "re-admission consumes the blob");
        assert_eq!(store.spilled_chunks(), 2);
        assert_eq!(store.readmitted(), 2);
        assert_eq!(store.live_bytes(), 0);
        assert!(store.spilled_bytes() > 0);
    }

    #[test]
    fn zero_length_and_full_chunks_round_trip_exactly() {
        let store = store();
        // Zero-length chunk: legal (an empty destination stream).
        let seg = store.spill(&U64Codec, &[chunk_of(&[])]).unwrap();
        let mut out = Vec::new();
        store.readmit(&U64Codec, seg, &mut out).unwrap();
        assert!(out.is_empty());
        // A nominally full 512-tuple chunk.
        let full: Vec<(VertexId, u64)> = (0..512u64).map(|i| (i as VertexId, i * 7)).collect();
        let seg = store.spill(&U64Codec, std::slice::from_ref(&full)).unwrap();
        assert_eq!(seg.tuples, 512);
        let mut out = Vec::new();
        store.readmit(&U64Codec, seg, &mut out).unwrap();
        assert_eq!(out, full);
    }

    #[test]
    fn every_truncation_point_yields_a_typed_error() {
        let store = store();
        let tuples: Vec<(VertexId, u64)> = (0..17).map(|i| (i, u64::from(i) << 32)).collect();
        let seg = store.spill(&U64Codec, &[tuples]).unwrap();
        let frame = std::fs::read(&seg.path).unwrap();
        // Truncate at every possible length: each must fail with a typed
        // error (never a panic, never a silent short result).
        for len in 0..frame.len() {
            let err = match unseal(&frame[..len]) {
                Err(e) => e,
                Ok(payload) => {
                    // The checksum guards the tail, so any in-payload cut
                    // that still unseals is astronomically unlikely; decode
                    // must then catch the truncation.
                    let mut r = SpillReader::new(payload);
                    let mut bad = None;
                    if let Ok(count) = r.u64("tuple count") {
                        for _ in 0..count {
                            if let Err(e) =
                                r.u32("tuple vertex").and_then(|_| U64Codec.decode(&mut r))
                            {
                                bad = Some(e);
                                break;
                            }
                        }
                    }
                    bad.expect("truncated frame unsealed AND decoded cleanly")
                }
            };
            assert!(
                matches!(
                    err,
                    SpillError::Truncated { .. }
                        | SpillError::Corrupt { .. }
                        | SpillError::NotASpillBlob
                ),
                "truncation at {len} gave {err:?}"
            );
        }
        store.discard(seg);
    }

    #[test]
    fn every_corruption_point_yields_a_typed_error() {
        let store = store();
        let seg = store.spill(&U64Codec, &[chunk_of(&[(1, 2), (3, 4)])]).unwrap();
        let frame = std::fs::read(&seg.path).unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xA5;
            let err = unseal(&bad).expect_err("single-byte corruption must be caught");
            assert!(
                matches!(err, SpillError::Corrupt { .. } | SpillError::NotASpillBlob),
                "corruption at {i} gave {err:?}"
            );
        }
        store.discard(seg);
    }

    #[test]
    fn byte_budget_refuses_with_typed_exhaustion() {
        let config = SpillConfig { max_spill_bytes: Some(64), ..SpillConfig::in_temp() };
        let store = SpillStore::create(&config).unwrap();
        let big: Vec<(VertexId, u64)> = (0..100).map(|i| (i, 0)).collect();
        match store.spill(&U64Codec, &[big]) {
            Err(SpillError::Exhausted { cap: 64, .. }) => {}
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(store.exhausted_events(), 1);
        assert_eq!(store.live_bytes(), 0, "refused writes leave nothing on disk");
        // A small write still fits under the budget.
        assert!(store.spill(&U64Codec, &[chunk_of(&[(1, 1)])]).is_ok());
    }

    #[test]
    fn injected_enospc_fails_the_write_but_is_degradable() {
        let config = SpillConfig {
            faults: SpillFaults { fail_write_after_bytes: Some(0), ..SpillFaults::default() },
            ..SpillConfig::in_temp()
        };
        let store = SpillStore::create(&config).unwrap();
        let err = store.spill(&U64Codec, &[chunk_of(&[(1, 1)])]).unwrap_err();
        assert!(matches!(err, SpillError::Io(_)), "{err:?}");
        assert!(err.is_degradable());
        assert!(err.to_string().contains("no space left"));
    }

    #[test]
    fn injected_read_faults_are_typed_read_errors() {
        for (faults, want_corrupt) in [
            (SpillFaults { corrupt_read: true, ..SpillFaults::default() }, true),
            (SpillFaults { short_read: true, ..SpillFaults::default() }, false),
        ] {
            let store =
                SpillStore::create(&SpillConfig { faults, ..SpillConfig::in_temp() }).unwrap();
            let seg = store.spill(&U64Codec, &[chunk_of(&[(1, 1), (2, 2)])]).unwrap();
            let mut out = Vec::new();
            let err = store.readmit(&U64Codec, seg, &mut out).unwrap_err();
            assert!(!err.is_degradable(), "read faults must abort: {err:?}");
            if want_corrupt {
                assert!(matches!(err, SpillError::Corrupt { .. }), "{err:?}");
            } else {
                assert!(matches!(err, SpillError::Truncated { .. }), "{err:?}");
            }
        }
    }

    #[test]
    fn drop_removes_the_spill_directory() {
        let store = store();
        let dir = store.dir().to_path_buf();
        let _seg = store.spill(&U64Codec, &[chunk_of(&[(1, 1)])]).unwrap();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "Drop must delete the per-run directory");
    }

    proptest! {
        /// Arbitrary tuple runs round-trip bit-exactly through the blob
        /// format, and a flipped byte anywhere in the frame is always a
        /// typed error — the same contract the cluster frame codec keeps.
        #[test]
        fn prop_blob_round_trip(
            tuples in proptest::collection::vec((0u32..1_000_000, proptest::any::<u64>()), 0..200),
            flip in proptest::any::<u16>(),
        ) {
            let store = store();
            let seg = store.spill(&U64Codec, std::slice::from_ref(&tuples)).unwrap();
            let frame = std::fs::read(&seg.path).unwrap();
            let mut out = Vec::new();
            store.readmit(&U64Codec, seg, &mut out).unwrap();
            prop_assert_eq!(&out, &tuples);
            // Re-seal and corrupt one pseudo-random byte.
            let i = flip as usize % frame.len();
            let mut bad = frame.clone();
            bad[i] ^= 0x81;
            prop_assert!(unseal(&bad).is_err());
        }
    }
}
