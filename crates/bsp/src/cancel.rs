//! Cooperative cancellation: tokens shared between a run and its owner.
//!
//! A [`CancelToken`] is a cheap cloneable handle ([`Arc`] inside) created
//! by whoever owns a run — the service scheduler, a test, the simulation
//! harness — and threaded into the engine through
//! [`RunControl`](crate::engine::RunControl). The engine polls it at every
//! superstep barrier and every few message batches inside `compute`, so a
//! cancelled run stops within one batch of work rather than one superstep.
//!
//! Three triggers end a run early:
//!
//! - **explicit cancel** ([`CancelToken::cancel`]) — a `cancel` request or
//!   a disconnected client; takes effect mid-superstep (*hard*: partial
//!   worker output is discarded, no checkpoint is possible);
//! - **wall-clock deadline** ([`CancelToken::with_timeout`]) — *hard* by
//!   default; *soft* when the caller requested checkpointing, in which
//!   case the engine finishes the superstep and captures the frontier at
//!   the barrier;
//! - **superstep deadline** ([`CancelToken::with_superstep_deadline`]) —
//!   always acts at the barrier before the named superstep runs, which
//!   makes it exactly reproducible; this is the trigger the deterministic
//!   simulation uses.
//!
//! However a run ends, the engine returns every pooled chunk before
//! reporting the outcome: the get/put balance assert holds on the
//! cancelled path exactly as on clean shutdown.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The owner asked for cancellation (service `cancel` request).
    Explicit,
    /// The client connection that submitted the query went away.
    Disconnected,
    /// The wall-clock or superstep deadline passed.
    Deadline,
    /// The in-flight message volume exceeded the budget while
    /// checkpointing was enabled (instead of the hard
    /// [`BspError::MessageBudgetExceeded`](crate::BspError) abort).
    Budget,
    /// The scheduler's preemption barrier was reached: the run yielded
    /// its worker slot at a superstep boundary with a resumable frontier.
    /// Not an error — the owner resumes the run from the checkpoint.
    Preempted,
}

impl CancelReason {
    /// Stable wire name (used by the service protocol and stats).
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelReason::Explicit => "explicit",
            CancelReason::Disconnected => "disconnected",
            CancelReason::Deadline => "deadline",
            CancelReason::Budget => "budget",
            CancelReason::Preempted => "preempted",
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const REASON_NONE: u8 = 0;

fn reason_to_u8(r: CancelReason) -> u8 {
    match r {
        CancelReason::Explicit => 1,
        CancelReason::Disconnected => 2,
        CancelReason::Deadline => 3,
        CancelReason::Budget => 4,
        CancelReason::Preempted => 5,
    }
}

fn reason_from_u8(v: u8) -> Option<CancelReason> {
    match v {
        1 => Some(CancelReason::Explicit),
        2 => Some(CancelReason::Disconnected),
        3 => Some(CancelReason::Deadline),
        4 => Some(CancelReason::Budget),
        5 => Some(CancelReason::Preempted),
        _ => None,
    }
}

/// Sentinel for "no preemption barrier armed".
const PREEMPT_NONE: u32 = u32::MAX;

struct Inner {
    /// `REASON_NONE` until cancelled; then the encoded [`CancelReason`].
    /// A single atomic doubles as flag and reason so the first canceller
    /// wins without a lock.
    reason: AtomicU8,
    /// Wall-clock deadline, fixed at construction.
    deadline: Option<Instant>,
    /// Cancel at the barrier before this superstep runs (deterministic).
    superstep_deadline: Option<u32>,
    /// Yield at the barrier before this superstep runs, with a frontier
    /// capture regardless of the run's checkpoint flag. Re-armed between
    /// slices by the scheduler; `PREEMPT_NONE` means no barrier.
    preempt_barrier: AtomicU32,
}

/// Shared cancellation handle for one run. Clone it freely; all clones
/// observe the same state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    fn build(deadline: Option<Instant>, superstep_deadline: Option<u32>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                reason: AtomicU8::new(REASON_NONE),
                deadline,
                superstep_deadline,
                preempt_barrier: AtomicU32::new(PREEMPT_NONE),
            }),
        }
    }

    /// A token with no deadline; only [`CancelToken::cancel`] ends the run.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token whose wall-clock deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::build(Instant::now().checked_add(timeout), None)
    }

    /// A token that cancels at the barrier before superstep
    /// `superstep_deadline` would run — exactly reproducible, independent
    /// of wall time.
    pub fn with_superstep_deadline(superstep_deadline: u32) -> Self {
        Self::build(None, Some(superstep_deadline))
    }

    /// Requests cancellation with `reason`. The first call wins; later
    /// calls (and deadline upgrades) keep the original reason.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            reason_to_u8(reason),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Whether [`CancelToken::cancel`] has been called (deadlines are
    /// checked separately — see [`CancelToken::deadline_passed`]).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.reason.load(Ordering::Relaxed) != REASON_NONE
    }

    /// The reason recorded by the first [`CancelToken::cancel`] call.
    pub fn reason(&self) -> Option<CancelReason> {
        reason_from_u8(self.inner.reason.load(Ordering::SeqCst))
    }

    /// Whether the wall-clock deadline (if any) has passed.
    #[inline]
    pub fn deadline_passed(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deterministic superstep deadline, if configured.
    #[inline]
    pub fn superstep_deadline(&self) -> Option<u32> {
        self.inner.superstep_deadline
    }

    /// Arms the preemption barrier: the run yields (reason
    /// [`CancelReason::Preempted`], frontier captured) at the barrier
    /// before superstep `superstep` runs. Unlike a superstep deadline,
    /// the barrier is mutable — the scheduler re-arms it every slice —
    /// and the frontier is captured even when the run did not request
    /// checkpointing.
    pub fn set_preempt_barrier(&self, superstep: u32) {
        self.inner.preempt_barrier.store(superstep.min(PREEMPT_NONE - 1), Ordering::SeqCst);
    }

    /// Disarms the preemption barrier; the run continues to completion
    /// (or until another trigger fires).
    pub fn clear_preempt_barrier(&self) {
        self.inner.preempt_barrier.store(PREEMPT_NONE, Ordering::SeqCst);
    }

    /// The currently-armed preemption barrier, if any.
    #[inline]
    pub fn preempt_barrier(&self) -> Option<u32> {
        match self.inner.preempt_barrier.load(Ordering::SeqCst) {
            PREEMPT_NONE => None,
            v => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Disconnected);
        t.cancel(CancelReason::Explicit);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Disconnected));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel(CancelReason::Explicit);
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_timeout_is_observed() {
        let t = CancelToken::with_timeout(Duration::from_secs(0));
        assert!(t.deadline_passed());
        // A passed deadline is not an explicit cancel.
        assert!(!t.is_cancelled());
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.deadline_passed());
    }

    #[test]
    fn superstep_deadline_is_exposed() {
        let t = CancelToken::with_superstep_deadline(3);
        assert_eq!(t.superstep_deadline(), Some(3));
        assert!(!t.deadline_passed());
        assert_eq!(CancelToken::new().superstep_deadline(), None);
    }

    #[test]
    fn preempt_barrier_arms_and_clears_across_clones() {
        let t = CancelToken::new();
        assert_eq!(t.preempt_barrier(), None);
        let u = t.clone();
        u.set_preempt_barrier(4);
        assert_eq!(t.preempt_barrier(), Some(4));
        // Re-arming moves the barrier; it is not first-write-wins.
        t.set_preempt_barrier(9);
        assert_eq!(u.preempt_barrier(), Some(9));
        t.clear_preempt_barrier();
        assert_eq!(u.preempt_barrier(), None);
        // A preempt barrier is not a cancel and not a deadline.
        assert!(!t.is_cancelled());
        assert!(!t.deadline_passed());
    }

    #[test]
    fn reasons_have_stable_wire_names() {
        for (r, s) in [
            (CancelReason::Explicit, "explicit"),
            (CancelReason::Disconnected, "disconnected"),
            (CancelReason::Deadline, "deadline"),
            (CancelReason::Budget, "budget"),
            (CancelReason::Preempted, "preempted"),
        ] {
            assert_eq!(r.as_str(), s);
            assert_eq!(r.to_string(), s);
        }
    }
}
