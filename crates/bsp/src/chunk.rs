//! Pooled message chunks and per-worker steal queues.
//!
//! The message plane moves `(VertexId, M)` tuples in fixed-capacity chunks
//! instead of one unbounded `Vec` per destination worker. Chunks are
//! recycled through a [`ChunkPool`] across supersteps, so after the first
//! superstep warms the pool, steady-state message traffic performs no heap
//! allocation: a sender acquires a recycled chunk, fills it, and the
//! exchange moves the chunk *by pointer* into the receiver's inbox — the
//! tuples themselves are written exactly once.
//!
//! The pool can be capped ([`ChunkPool::with_limit`]): beyond the cap,
//! [`ChunkPool::try_acquire`] reports the typed [`PoolExhausted`]
//! condition instead of allocating without bound, and senders degrade
//! gracefully by growing their current chunk past its nominal capacity
//! (see [`push_chunked`]). Exhaustion events and the get/put balance are
//! metered so the engine can surface them in
//! [`EngineMetrics`](crate::EngineMetrics) and assert, in debug builds,
//! that every acquired chunk was released by shutdown.
//!
//! After the exchange, each worker regroups its inbox into per-vertex
//! *units* (chunks split only at vertex boundaries) and publishes them to
//! its [`StealQueue`]. The owner drains its queue front-first; when
//! stealing is enabled, idle workers claim units from the back of straggler
//! queues — the intra-worker analogue of the paper's workload-aware
//! distribution (Section 5.3).

use parking_lot::Mutex;
use psgl_graph::VertexId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Default number of `(VertexId, M)` tuples per chunk.
pub const DEFAULT_CHUNK_CAPACITY: usize = 512;

/// A fixed-capacity run of routed messages. Plain `Vec` under the hood;
/// the pool guarantees the capacity is allocated once and retained.
pub type Chunk<M> = Vec<(VertexId, M)>;

/// Typed condition: the pool's live-chunk cap is reached and no recycled
/// chunk is available. Recoverable — callers degrade (e.g. grow an
/// existing chunk) rather than abort; every occurrence is counted and
/// surfaced in [`EngineMetrics`](crate::EngineMetrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted;

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk pool exhausted (live-chunk cap reached)")
    }
}

impl std::error::Error for PoolExhausted {}

/// A free-list of recycled message chunks shared by all workers of a run.
///
/// `try_acquire` pops a cleared chunk if one is available, allocates a
/// fresh one while under the live-chunk cap, and reports [`PoolExhausted`]
/// otherwise; `release` returns a chunk to the free list with its buffer
/// intact. The `fresh`/`reused` counters feed
/// [`EngineMetrics::allocations_avoided`](crate::EngineMetrics::allocations_avoided);
/// `outstanding` (acquires minus releases) catches leaks and double-frees.
pub struct ChunkPool<M> {
    free: Mutex<Vec<Chunk<M>>>,
    capacity: usize,
    /// Cap on live (acquired + free) chunks; `None` = unbounded.
    max_live: Option<u64>,
    fresh: AtomicU64,
    reused: AtomicU64,
    /// Acquired-but-not-released chunks; negative would mean double-free.
    outstanding: AtomicI64,
    /// High-water mark of `outstanding` over the pool's lifetime.
    peak: AtomicI64,
    exhausted: AtomicU64,
}

impl<M> ChunkPool<M> {
    /// Creates an unbounded pool handing out chunks of `capacity` tuples
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_limit(capacity, None)
    }

    /// Creates a pool that stops allocating fresh chunks once `max_live`
    /// chunks exist (`None` = unbounded, as [`ChunkPool::new`]).
    pub fn with_limit(capacity: usize, max_live: Option<u64>) -> Self {
        ChunkPool {
            free: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            max_live,
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            outstanding: AtomicI64::new(0),
            peak: AtomicI64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Counts one acquisition and pushes the high-water mark.
    #[inline]
    fn note_acquired(&self) {
        let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Tuples per chunk.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hands out an empty chunk, recycling a released one when possible;
    /// reports [`PoolExhausted`] instead of allocating past the cap.
    pub fn try_acquire(&self) -> Result<Chunk<M>, PoolExhausted> {
        if let Some(c) = self.free.lock().pop() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            self.note_acquired();
            return Ok(c);
        }
        if let Some(cap) = self.max_live {
            if self.fresh.load(Ordering::Relaxed) >= cap {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return Err(PoolExhausted);
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        self.note_acquired();
        Ok(Vec::with_capacity(self.capacity))
    }

    /// Hands out an empty chunk unconditionally. Structural callers (unit
    /// assembly, a destination's first chunk) genuinely need one — their
    /// demand is bounded by the topology (`O(workers²)` per superstep),
    /// not by traffic — so over-cap allocation here is counted as an
    /// exhaustion event but still served.
    pub fn acquire(&self) -> Chunk<M> {
        match self.try_acquire() {
            Ok(c) => c,
            Err(PoolExhausted) => {
                // try_acquire already counted the exhaustion event.
                self.fresh.fetch_add(1, Ordering::Relaxed);
                self.note_acquired();
                Vec::with_capacity(self.capacity)
            }
        }
    }

    /// Returns `chunk` to the free list. Oversized chunks (a single vertex
    /// can exceed the nominal capacity — units never split a vertex — and
    /// exhaustion grows sender chunks) are recycled too; their extra
    /// capacity is simply kept.
    pub fn release(&self, mut chunk: Chunk<M>) {
        chunk.clear();
        if chunk.capacity() > 0 {
            let balance = self.outstanding.fetch_sub(1, Ordering::Relaxed);
            debug_assert!(balance > 0, "chunk released more often than acquired (double free)");
            self.free.lock().push(chunk);
        }
    }

    /// Chunks allocated because the free list was empty.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Chunks served from the free list — allocations avoided.
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Acquired-but-unreleased chunks right now (0 at a clean shutdown).
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously outstanding chunks — the pool's
    /// true peak memory footprint, surviving after everything is released.
    pub fn peak_outstanding(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Times the live-chunk cap forced a caller onto a degraded path.
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

/// Appends `(to, msg)` to the last chunk of `list`, acquiring a new chunk
/// from `pool` when the current one is full. When the pool is exhausted
/// (live-chunk cap reached), the message goes into the current chunk past
/// its nominal capacity instead — bounded degradation in place of an
/// unbounded fresh allocation; the pool counts the event.
#[inline]
pub fn push_chunked<M>(pool: &ChunkPool<M>, list: &mut Vec<Chunk<M>>, to: VertexId, msg: M) {
    match list.last_mut() {
        Some(c) if c.len() < pool.capacity() => c.push((to, msg)),
        Some(c) => match pool.try_acquire() {
            Ok(mut next) => {
                next.push((to, msg));
                list.push(next);
            }
            Err(PoolExhausted) => c.push((to, msg)),
        },
        None => {
            // A destination's first chunk is structural demand: served even
            // over the cap (and metered) — there is nothing to grow yet.
            let mut c = pool.acquire();
            c.push((to, msg));
            list.push(c);
        }
    }
}

/// One worker's queue of ready-to-process message units for the current
/// superstep. Units are chunks whose boundaries coincide with vertex
/// boundaries, so processing a unit calls `compute` on complete vertices
/// only — stealing can never split a vertex's message batch.
#[derive(Default)]
pub struct StealQueue<M> {
    units: Mutex<VecDeque<Chunk<M>>>,
}

impl<M> StealQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        StealQueue { units: Mutex::new(VecDeque::new()) }
    }

    /// Publishes a unit (owner only, before the superstep barrier).
    pub fn push(&self, unit: Chunk<M>) {
        self.units.lock().push_back(unit);
    }

    /// The owner claims the oldest unit (front).
    pub fn pop_own(&self) -> Option<Chunk<M>> {
        self.units.lock().pop_front()
    }

    /// A thief claims the newest unit (back), minimizing contention with
    /// the owner working from the front.
    pub fn pop_steal(&self) -> Option<Chunk<M>> {
        self.units.lock().pop_back()
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.units.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.units.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_buffers() {
        let pool: ChunkPool<u32> = ChunkPool::new(8);
        let mut a = pool.acquire();
        assert_eq!(pool.fresh_allocations(), 1);
        assert_eq!(pool.outstanding(), 1);
        a.push((1, 10));
        pool.release(a);
        assert_eq!(pool.outstanding(), 0);
        let b = pool.acquire();
        assert!(b.is_empty());
        assert!(b.capacity() >= 8);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 1);
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool.peak_outstanding(), 1, "peak survives release/reacquire");
    }

    #[test]
    fn peak_outstanding_is_a_high_water_mark() {
        let pool: ChunkPool<u32> = ChunkPool::new(4);
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        assert_eq!(pool.peak_outstanding(), 3);
        pool.release(a);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.peak_outstanding(), 3, "peak is never lowered by releases");
        let _d = pool.acquire();
        assert_eq!(pool.peak_outstanding(), 3);
    }

    #[test]
    fn push_chunked_rolls_over_at_capacity() {
        let pool: ChunkPool<u32> = ChunkPool::new(2);
        let mut list = Vec::new();
        for i in 0..5 {
            push_chunked(&pool, &mut list, i, i);
        }
        assert_eq!(list.len(), 3);
        assert_eq!(list[0].len(), 2);
        assert_eq!(list[2].len(), 1);
        assert_eq!(pool.fresh_allocations(), 3);
        assert_eq!(pool.exhausted_events(), 0);
    }

    #[test]
    fn capped_pool_reports_typed_exhaustion() {
        let pool: ChunkPool<u32> = ChunkPool::with_limit(4, Some(1));
        let a = pool.try_acquire().unwrap();
        assert_eq!(pool.try_acquire(), Err(PoolExhausted));
        assert_eq!(pool.exhausted_events(), 1);
        // Releasing makes the chunk available again — recoverable.
        pool.release(a);
        assert!(pool.try_acquire().is_ok());
        assert_eq!(PoolExhausted.to_string(), "chunk pool exhausted (live-chunk cap reached)");
    }

    #[test]
    fn push_chunked_grows_last_chunk_when_exhausted() {
        let pool: ChunkPool<u32> = ChunkPool::with_limit(2, Some(1));
        let mut list = Vec::new();
        for i in 0..6 {
            push_chunked(&pool, &mut list, i, i);
        }
        // One chunk allocated (the cap), then grown past its capacity.
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].len(), 6);
        assert_eq!(pool.fresh_allocations(), 1);
        assert!(pool.exhausted_events() >= 1);
        // Every message survived the degraded path, in order.
        let values: Vec<u32> = list[0].iter().map(|&(_, m)| m).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn structural_acquire_is_served_past_the_cap_but_metered() {
        let pool: ChunkPool<u32> = ChunkPool::with_limit(4, Some(1));
        let _a = pool.acquire();
        let _b = pool.acquire(); // over the cap: served, counted
        assert_eq!(pool.fresh_allocations(), 2);
        assert_eq!(pool.exhausted_events(), 1);
        assert_eq!(pool.outstanding(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_release_is_caught_in_debug_builds() {
        let pool: ChunkPool<u32> = ChunkPool::new(4);
        let a = pool.acquire();
        pool.release(a);
        pool.release(Vec::with_capacity(4)); // never acquired
    }

    #[test]
    fn steal_queue_owner_front_thief_back() {
        let q: StealQueue<u32> = StealQueue::new();
        q.push(vec![(0, 0)]);
        q.push(vec![(1, 1)]);
        q.push(vec![(2, 2)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_own().unwrap()[0].0, 0);
        assert_eq!(q.pop_steal().unwrap()[0].0, 2);
        assert_eq!(q.pop_own().unwrap()[0].0, 1);
        assert!(q.is_empty());
        assert!(q.pop_steal().is_none());
    }
}
