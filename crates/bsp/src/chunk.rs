//! Pooled message chunks and per-worker steal queues.
//!
//! The message plane moves `(VertexId, M)` tuples in fixed-capacity chunks
//! instead of one unbounded `Vec` per destination worker. Chunks are
//! recycled through a [`ChunkPool`] across supersteps, so after the first
//! superstep warms the pool, steady-state message traffic performs no heap
//! allocation: a sender acquires a recycled chunk, fills it, and the
//! exchange moves the chunk *by pointer* into the receiver's inbox — the
//! tuples themselves are written exactly once.
//!
//! After the exchange, each worker regroups its inbox into per-vertex
//! *units* (chunks split only at vertex boundaries) and publishes them to
//! its [`StealQueue`]. The owner drains its queue front-first; when
//! stealing is enabled, idle workers claim units from the back of straggler
//! queues — the intra-worker analogue of the paper's workload-aware
//! distribution (Section 5.3).

use parking_lot::Mutex;
use psgl_graph::VertexId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of `(VertexId, M)` tuples per chunk.
pub const DEFAULT_CHUNK_CAPACITY: usize = 512;

/// A fixed-capacity run of routed messages. Plain `Vec` under the hood;
/// the pool guarantees the capacity is allocated once and retained.
pub type Chunk<M> = Vec<(VertexId, M)>;

/// A free-list of recycled message chunks shared by all workers of a run.
///
/// `acquire` pops a cleared chunk if one is available and allocates a fresh
/// one otherwise; `release` returns a chunk to the free list with its
/// buffer intact. The `fresh`/`reused` counters feed
/// [`EngineMetrics::allocations_avoided`](crate::EngineMetrics::allocations_avoided).
pub struct ChunkPool<M> {
    free: Mutex<Vec<Chunk<M>>>,
    capacity: usize,
    fresh: AtomicU64,
    reused: AtomicU64,
}

impl<M> ChunkPool<M> {
    /// Creates an empty pool handing out chunks of `capacity` tuples
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ChunkPool {
            free: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Tuples per chunk.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hands out an empty chunk, recycling a released one when possible.
    pub fn acquire(&self) -> Chunk<M> {
        if let Some(c) = self.free.lock().pop() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return c;
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(self.capacity)
    }

    /// Returns `chunk` to the free list. Oversized chunks (a single vertex
    /// can exceed the nominal capacity — units never split a vertex) are
    /// recycled too; their extra capacity is simply kept.
    pub fn release(&self, mut chunk: Chunk<M>) {
        chunk.clear();
        if chunk.capacity() > 0 {
            self.free.lock().push(chunk);
        }
    }

    /// Chunks allocated because the free list was empty.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Chunks served from the free list — allocations avoided.
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

/// Appends `(to, msg)` to the last chunk of `list`, acquiring a new chunk
/// from `pool` when the current one is full.
#[inline]
pub(crate) fn push_chunked<M>(pool: &ChunkPool<M>, list: &mut Vec<Chunk<M>>, to: VertexId, msg: M) {
    match list.last_mut() {
        Some(c) if c.len() < pool.capacity() => c.push((to, msg)),
        _ => {
            let mut c = pool.acquire();
            c.push((to, msg));
            list.push(c);
        }
    }
}

/// One worker's queue of ready-to-process message units for the current
/// superstep. Units are chunks whose boundaries coincide with vertex
/// boundaries, so processing a unit calls `compute` on complete vertices
/// only — stealing can never split a vertex's message batch.
#[derive(Default)]
pub struct StealQueue<M> {
    units: Mutex<VecDeque<Chunk<M>>>,
}

impl<M> StealQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        StealQueue { units: Mutex::new(VecDeque::new()) }
    }

    /// Publishes a unit (owner only, before the superstep barrier).
    pub fn push(&self, unit: Chunk<M>) {
        self.units.lock().push_back(unit);
    }

    /// The owner claims the oldest unit (front).
    pub fn pop_own(&self) -> Option<Chunk<M>> {
        self.units.lock().pop_front()
    }

    /// A thief claims the newest unit (back), minimizing contention with
    /// the owner working from the front.
    pub fn pop_steal(&self) -> Option<Chunk<M>> {
        self.units.lock().pop_back()
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.units.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.units.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_buffers() {
        let pool: ChunkPool<u32> = ChunkPool::new(8);
        let mut a = pool.acquire();
        assert_eq!(pool.fresh_allocations(), 1);
        a.push((1, 10));
        pool.release(a);
        let b = pool.acquire();
        assert!(b.is_empty());
        assert!(b.capacity() >= 8);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 1);
    }

    #[test]
    fn push_chunked_rolls_over_at_capacity() {
        let pool: ChunkPool<u32> = ChunkPool::new(2);
        let mut list = Vec::new();
        for i in 0..5 {
            push_chunked(&pool, &mut list, i, i);
        }
        assert_eq!(list.len(), 3);
        assert_eq!(list[0].len(), 2);
        assert_eq!(list[2].len(), 1);
        assert_eq!(pool.fresh_allocations(), 3);
    }

    #[test]
    fn steal_queue_owner_front_thief_back() {
        let q: StealQueue<u32> = StealQueue::new();
        q.push(vec![(0, 0)]);
        q.push(vec![(1, 1)]);
        q.push(vec![(2, 2)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_own().unwrap()[0].0, 0);
        assert_eq!(q.pop_steal().unwrap()[0].0, 2);
        assert_eq!(q.pop_own().unwrap()[0].0, 1);
        assert!(q.is_empty());
        assert!(q.pop_steal().is_none());
    }
}
