#![warn(missing_docs)]

//! A Bulk Synchronous Parallel vertex-centric engine.
//!
//! PSgL is implemented on Giraph, an open-source Pregel (Section 6). This
//! crate is the equivalent substrate: a BSP engine where a user-supplied
//! [`VertexProgram`] runs on every active vertex each superstep, sends
//! messages to other vertices, and the engine performs the synchronous
//! message exchange between supersteps.
//!
//! Differences from a distributed Pregel, by design (see `DESIGN.md` §3):
//!
//! - workers are OS threads on one machine; "communication" between them is
//!   a memcpy, but the engine *meters* it (per-worker message counts) so
//!   experiments can reason about communication volume exactly as the
//!   paper does;
//! - per-worker *cost units* ([`Context::add_cost`]) implement the paper's
//!   `load(Gpsi)` accounting (Equation 2); the simulated makespan
//!   `Σ_s max_k cost[s][k]` is Equation 3's `T`, the quantity every
//!   load-balance figure of the paper reports;
//! - a configurable in-flight message budget reproduces the OOM failures
//!   of Tables 2 and 4 deterministically.
//!
//! The engine is message-driven: superstep 0 invokes the program on every
//! vertex (PSgL's *initialization phase*); later supersteps invoke it only
//! on vertices with pending messages. The run terminates when no messages
//! are in flight.

pub mod cancel;
pub mod chunk;
pub mod engine;
pub mod exchange;
pub mod exec;
pub mod metrics;
pub mod spill;

pub use cancel::{CancelReason, CancelToken};
pub use chunk::{
    push_chunked, Chunk, ChunkPool, PoolExhausted, StealQueue, DEFAULT_CHUNK_CAPACITY,
};
pub use engine::{
    run, run_controlled, run_with_executor, BspConfig, BspError, BspResult, CancelledRun, Context,
    ResumePoint, RunControl, RunOutcome, SpillControl, VertexProgram,
};
pub use exchange::{
    Exchange, ExchangeDirective, ExchangeError, ExchangeOutcome, FrontierSink, WorkerOutbox,
};
pub use exec::{Executor, SerialExecutor, TaskFn, ThreadExecutor, WorkerTask};
pub use metrics::{
    CarriedCounters, EngineMetrics, NetSuperstepMetrics, SuperstepMetrics, WorkerSuperstepMetrics,
};
pub use spill::{
    SpillCodec, SpillConfig, SpillError, SpillFaults, SpillReader, SpillSegment, SpillStore,
    SPILL_MAGIC,
};
