//! Immutable CSR (compressed sparse row) storage for undirected graphs.
//!
//! This is the in-memory representation PSgL workers hold: for each vertex a
//! sorted adjacency slice. Sorted adjacency gives `O(log deg)` edge lookups
//! (used by pruning rule 2 and the GRAY verification of Algorithm 2) and
//! cache-friendly sequential scans during expansion.

use crate::error::GraphError;

/// Vertex identifier. The paper's graphs reach 42M vertices; `u32` covers
/// 4.2B and halves adjacency memory versus `usize`.
pub type VertexId = u32;

/// An immutable undirected graph in CSR form.
///
/// Invariants (checked in debug builds, relied upon everywhere):
/// - `offsets.len() == num_vertices + 1`, monotonically non-decreasing;
/// - each adjacency slice is strictly increasing (sorted, no duplicates,
///   no self-loops);
/// - adjacency is symmetric: `v ∈ N(u)` iff `u ∈ N(v)`.
#[derive(Clone, Debug)]
pub struct DataGraph {
    /// `offsets[v]..offsets[v+1]` indexes `adjacency` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated sorted neighbor lists (each undirected edge twice).
    adjacency: Vec<VertexId>,
}

impl DataGraph {
    /// Builds a graph from a raw CSR pair. `offsets` must have one more
    /// entry than the vertex count and each adjacency run must be strictly
    /// increasing; violations return [`GraphError::InvalidParameter`].
    /// Symmetry is verified in debug builds only (it is `O(m log d)`).
    pub fn from_csr(offsets: Vec<u64>, adjacency: Vec<VertexId>) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::InvalidParameter(
                "offsets must contain at least one entry".into(),
            ));
        }
        if *offsets.last().unwrap() != adjacency.len() as u64 {
            return Err(GraphError::InvalidParameter(format!(
                "last offset {} does not match adjacency length {}",
                offsets.last().unwrap(),
                adjacency.len()
            )));
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(GraphError::InvalidParameter(format!(
                    "offsets not monotone at vertex {v}"
                )));
            }
            let run = &adjacency[offsets[v] as usize..offsets[v + 1] as usize];
            for w in run.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::InvalidParameter(format!(
                        "adjacency of vertex {v} not strictly increasing"
                    )));
                }
            }
            if run.iter().any(|&u| u as usize >= n) {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(*run.iter().find(|&&u| u as usize >= n).unwrap()),
                    bound: n as u64,
                });
            }
            if run.binary_search(&(v as VertexId)).is_ok() {
                return Err(GraphError::InvalidParameter(format!("self-loop at vertex {v}")));
            }
        }
        let g = DataGraph { offsets, adjacency };
        debug_assert!(g.is_symmetric(), "CSR adjacency must be symmetric");
        Ok(g)
    }

    /// Convenience constructor: builds from an edge list over vertices
    /// `0..n`, deduplicating, symmetrizing and dropping self-loops
    /// (the paper's preprocessing except isolated-vertex removal —
    /// callers that want that should use [`crate::GraphBuilder`]).
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut builder = crate::builder::GraphBuilder::with_capacity(edges.len());
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build_with_num_vertices(n)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.adjacency.len() as u64 / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Exact edge-existence test in `O(log min(deg u, deg v))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`, in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            let start = self.neighbors(u).partition_point(|&v| v <= u);
            self.neighbors(u)[start..].iter().map(move |&v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> u32 {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sum of degrees = `2 * num_edges`.
    #[inline]
    pub fn degree_sum(&self) -> u64 {
        self.adjacency.len() as u64
    }

    /// Verifies adjacency symmetry (`O(m log d)`); used by debug assertions
    /// and tests.
    pub fn is_symmetric(&self) -> bool {
        self.vertices()
            .all(|u| self.neighbors(u).iter().all(|&v| self.neighbors(v).binary_search(&u).is_ok()))
    }

    /// Approximate heap footprint in bytes (offsets + adjacency).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.adjacency.len() * std::mem::size_of::<VertexId>()
    }

    /// A content fingerprint of the graph structure, stable across loads of
    /// the same graph (CSR form is canonical: sorted adjacency, exactly one
    /// offsets layout per edge set). Suitable as a cache key component —
    /// e.g. keying cached query results to the graph they were computed on
    /// — not as a cryptographic digest.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hash::FxHasher::default();
        h.write_u64(self.offsets.len() as u64);
        for &o in &self.offsets {
            h.write_u64(o);
        }
        for &v in &self.adjacency {
            h.write_u32(v);
        }
        // FxHash's single multiply leaves low bits structured; finish with a
        // full avalanche so the fingerprint is usable in truncated form.
        crate::hash::hash_u64(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> DataGraph {
        // 0 - 1 - 2
        DataGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree_sum(), 4);
    }

    #[test]
    fn has_edge_both_directions_and_absent() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once_sorted() {
        let g = DataGraph::from_edges(4, &[(2, 3), (0, 1), (1, 2), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn from_edges_dedups_and_symmetrizes() {
        let g = DataGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0); // isolated vertex retained by from_edges
    }

    #[test]
    fn from_csr_rejects_bad_inputs() {
        // mismatched lengths
        assert!(DataGraph::from_csr(vec![0, 2], vec![1]).is_err());
        // non-monotone offsets
        assert!(DataGraph::from_csr(vec![0, 2, 1, 2], vec![1, 2]).is_err());
        // unsorted adjacency
        assert!(DataGraph::from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
        // out-of-range neighbor
        assert!(DataGraph::from_csr(vec![0, 1, 2], vec![5, 0]).is_err());
        // self loop
        assert!(DataGraph::from_csr(vec![0, 1, 1], vec![0]).is_err());
        // empty offsets
        assert!(DataGraph::from_csr(vec![], vec![]).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = DataGraph::from_csr(vec![0], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn memory_bytes_tracks_sizes() {
        let g = path3();
        assert_eq!(g.memory_bytes(), 4 * 8 + 4 * 4);
    }

    #[test]
    fn content_hash_is_stable_and_structure_sensitive() {
        let a = path3();
        let b = DataGraph::from_edges(3, &[(1, 2), (0, 1)]).unwrap(); // same graph, reordered input
        assert_eq!(a.content_hash(), b.content_hash());
        let c = DataGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap(); // different edge set
        assert_ne!(a.content_hash(), c.content_hash());
        let d = DataGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap(); // extra isolated vertex
        assert_ne!(a.content_hash(), d.content_hash());
    }
}
