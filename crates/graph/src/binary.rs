//! Compact binary graph format.
//!
//! Text edge lists parse at tens of MB/s; the paper's graphs reach
//! billions of edges. This module stores the CSR arrays directly:
//!
//! ```text
//! magic "PSGLGRF1" | n: u64 | m2: u64 (= 2|E|) | offsets: (n+1) x u64 LE
//! | adjacency: m2 x u32 LE | checksum: u64 (FxHash of the payload)
//! ```
//!
//! Loading is a bounds-checked bulk read straight into the [`DataGraph`]
//! invariant checker — a corrupted file fails loudly, never silently.

use crate::csr::DataGraph;
use crate::error::GraphError;
use crate::hash::FxHasher;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::hash::Hasher;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PSGLGRF1";

/// Serializes `g` into the binary format.
pub fn to_bytes(g: &DataGraph) -> Bytes {
    let n = g.num_vertices();
    let m2 = g.degree_sum();
    let mut buf = BytesMut::with_capacity(8 + 16 + (n + 1) * 8 + m2 as usize * 4 + 8);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m2);
    let mut hasher = FxHasher::default();
    let mut offset = 0u64;
    buf.put_u64_le(0);
    hasher.write_u64(0);
    for v in g.vertices() {
        offset += u64::from(g.degree(v));
        buf.put_u64_le(offset);
        hasher.write_u64(offset);
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            buf.put_u32_le(u);
            hasher.write_u32(u);
        }
    }
    buf.put_u64_le(hasher.finish());
    buf.freeze()
}

/// Deserializes the binary format back into a [`DataGraph`].
pub fn from_bytes(mut data: &[u8]) -> Result<DataGraph, GraphError> {
    let fail = |msg: &str| GraphError::Parse { line: 0, message: msg.to_string() };
    if data.len() < 8 + 16 || &data[..8] != MAGIC {
        return Err(fail("not a PSGLGRF1 file"));
    }
    data.advance(8);
    let n = data.get_u64_le();
    let m2 = data.get_u64_le();
    let need = (n as usize + 1)
        .checked_mul(8)
        .and_then(|x| x.checked_add(m2 as usize * 4 + 8))
        .ok_or_else(|| fail("size overflow"))?;
    if data.remaining() != need {
        return Err(fail("truncated or oversized payload"));
    }
    let mut hasher = FxHasher::default();
    let mut offsets = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        let o = data.get_u64_le();
        hasher.write_u64(o);
        offsets.push(o);
    }
    let mut adjacency = Vec::with_capacity(m2 as usize);
    for _ in 0..m2 {
        let v = data.get_u32_le();
        hasher.write_u32(v);
        adjacency.push(v);
    }
    let checksum = data.get_u64_le();
    if checksum != hasher.finish() {
        return Err(fail("checksum mismatch"));
    }
    DataGraph::from_csr(offsets, adjacency)
}

/// Writes `g` to `writer` in the binary format.
pub fn write_binary<W: Write>(g: &DataGraph, mut writer: W) -> Result<(), GraphError> {
    writer.write_all(&to_bytes(g))?;
    Ok(())
}

/// Reads a binary-format graph from `reader`.
pub fn read_binary<R: Read>(mut reader: R) -> Result<DataGraph, GraphError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(&data)
}

/// Saves `g` to a file in the binary format.
pub fn save_binary<P: AsRef<Path>>(g: &DataGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Loads a binary-format graph file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<DataGraph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chung_lu, erdos_renyi_gnm};

    #[test]
    fn roundtrip_preserves_everything() {
        for g in [
            erdos_renyi_gnm(200, 800, 1).unwrap(),
            chung_lu(500, 6.0, 2.0, 2).unwrap(),
            DataGraph::from_edges(0, &[]).unwrap(),
            DataGraph::from_edges(3, &[]).unwrap(), // isolated vertices
        ] {
            let bytes = to_bytes(&g);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back.num_vertices(), g.num_vertices());
            assert_eq!(back.num_edges(), g.num_edges());
            assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let g = erdos_renyi_gnm(50, 150, 3).unwrap();
        let bytes = to_bytes(&g).to_vec();
        // Flip a payload byte: checksum must catch it.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(from_bytes(&bad).is_err());
        // Truncation.
        assert!(from_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
        // Empty input.
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psgl_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.psgl");
        let g = chung_lu(300, 5.0, 2.2, 7).unwrap();
        save_binary(&g, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn size_is_exactly_predictable() {
        // magic + header + offsets + adjacency + checksum; no per-record
        // framing, so loads are a single bulk pass.
        let g = erdos_renyi_gnm(1000, 10_000, 9).unwrap();
        let expected = 8 + 16 + (g.num_vertices() + 1) * 8 + g.degree_sum() as usize * 4 + 8;
        assert_eq!(to_bytes(&g).len(), expected);
    }
}
