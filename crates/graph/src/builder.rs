//! Graph construction with the paper's preprocessing.
//!
//! Section 7.1: *"All the real-world graphs are undirected ones created from
//! the original release by adding reciprocal edge and eliminating loops and
//! isolated nodes."* [`GraphBuilder`] implements exactly that pipeline:
//! edges are collected in arbitrary order (possibly directed, with
//! duplicates and self-loops), then symmetrized, deduplicated, stripped of
//! loops, and — when [`GraphBuilder::build`] is used — compacted so that
//! isolated vertices disappear and ids are dense.

use crate::csr::{DataGraph, VertexId};
use crate::error::GraphError;

/// Accumulates raw (possibly directed / duplicated) edges and produces a
/// clean [`DataGraph`].
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    /// Raw directed half-edges as given; symmetrization happens at build.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `edges` raw edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder { edges: Vec::with_capacity(edges) }
    }

    /// Adds one raw edge. Self-loops and duplicates are accepted here and
    /// removed at build time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of raw edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Read-only view of the accumulated raw edges (pre-symmetrization).
    pub fn raw_edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Builds the graph keeping the original id space `0..n` (isolated
    /// vertices are retained). Fails if any endpoint is `>= n`.
    pub fn build_with_num_vertices(self, n: usize) -> Result<DataGraph, GraphError> {
        if n > u32::MAX as usize {
            return Err(GraphError::InvalidParameter(format!(
                "vertex count {n} exceeds u32 range"
            )));
        }
        for &(u, v) in &self.edges {
            let bad = if u as usize >= n {
                Some(u)
            } else if v as usize >= n {
                Some(v)
            } else {
                None
            };
            if let Some(x) = bad {
                return Err(GraphError::VertexOutOfRange { vertex: u64::from(x), bound: n as u64 });
            }
        }
        Ok(build_csr(n, self.edges))
    }

    /// Builds the graph with the full preprocessing of the paper: loops and
    /// duplicates removed, edges symmetrized, and isolated vertices
    /// eliminated by remapping the touched vertices onto a dense `0..n'`
    /// id space (ids keep their relative order).
    pub fn build(self) -> Result<DataGraph, GraphError> {
        let mut touched: Vec<VertexId> =
            self.edges.iter().filter(|(u, v)| u != v).flat_map(|&(u, v)| [u, v]).collect();
        touched.sort_unstable();
        touched.dedup();
        let n = touched.len();
        // Dense remap: old id -> new id via binary search over `touched`
        // (memory-lean versus a full lookup table when ids are sparse).
        let remap = |x: VertexId| touched.binary_search(&x).unwrap() as VertexId;
        let edges: Vec<(VertexId, VertexId)> = self
            .edges
            .into_iter()
            .filter(|(u, v)| u != v)
            .map(|(u, v)| (remap(u), remap(v)))
            .collect();
        Ok(build_csr(n, edges))
    }
}

/// Symmetrizes, sorts, dedups and packs `edges` into CSR. Self-loops must
/// already be acceptable to drop; endpoints must be `< n`.
fn build_csr(n: usize, edges: Vec<(VertexId, VertexId)>) -> DataGraph {
    // Count both directions, dropping loops.
    let mut degree = vec![0u64; n + 1];
    for &(u, v) in &edges {
        if u != v {
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
    }
    // Prefix sums (provisional offsets, before dedup).
    let mut offsets = degree;
    for i in 1..=n {
        offsets[i] += offsets[i - 1];
    }
    let mut adjacency = vec![0 as VertexId; offsets[n] as usize];
    let mut cursor = offsets.clone();
    for &(u, v) in &edges {
        if u != v {
            adjacency[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
    }
    // Sort each run and dedup in place, compacting as we go.
    let mut write = 0usize;
    let mut final_offsets = vec![0u64; n + 1];
    let mut read_start = 0usize;
    for v in 0..n {
        let read_end = offsets[v + 1] as usize;
        let run = &mut adjacency[read_start..read_end];
        run.sort_unstable();
        let mut prev: Option<VertexId> = None;
        let mut local_write = write;
        for i in read_start..read_end {
            let x = adjacency[i];
            if prev != Some(x) {
                adjacency[local_write] = x;
                local_write += 1;
                prev = Some(x);
            }
        }
        write = local_write;
        final_offsets[v + 1] = write as u64;
        read_start = read_end;
    }
    adjacency.truncate(write);
    adjacency.shrink_to_fit();
    DataGraph::from_csr(final_offsets, adjacency).expect("builder produced invalid CSR")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_removes_loops_duplicates_and_isolated() {
        let mut b = GraphBuilder::new();
        // Vertices 10, 20, 30 touched; 20-20 loop ignored; (10,20) repeated
        // in both directions.
        b.add_edge(10, 20);
        b.add_edge(20, 10);
        b.add_edge(20, 20);
        b.add_edge(20, 30);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 3); // dense remap 10->0, 20->1, 30->2
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn build_of_only_loops_gives_empty_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 5);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn build_with_num_vertices_keeps_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2);
        let g = b.build_with_num_vertices(5).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn build_with_num_vertices_rejects_out_of_range() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 7);
        assert!(matches!(
            b.build_with_num_vertices(5),
            Err(GraphError::VertexOutOfRange { vertex: 7, bound: 5 })
        ));
    }

    #[test]
    fn heavy_duplication_is_fully_deduped() {
        let mut b = GraphBuilder::with_capacity(300);
        for _ in 0..100 {
            b.add_edge(0, 1);
            b.add_edge(1, 2);
            b.add_edge(2, 0);
        }
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    fn raw_edge_count_reflects_adds() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.raw_edge_count(), 0);
        b.add_edge(1, 2);
        b.add_edge(2, 2);
        assert_eq!(b.raw_edge_count(), 2);
    }
}
