//! Tiny real-world fixture graphs with known ground truth.
//!
//! The synthetic generators cover scale; these classic public-domain
//! graphs cover *reality* at unit-test size, with externally documented
//! statistics to validate against (e.g. Zachary's karate club has exactly
//! 45 triangles).

use crate::builder::GraphBuilder;
use crate::csr::DataGraph;

/// Zachary's karate club (1977): 34 members, 78 social ties — the most
/// re-analyzed social network in existence. Known ground truth: 45
/// triangles, 11 4-cliques, max degree 17 (the instructor and the
/// president).
pub fn karate_club() -> DataGraph {
    // 1-based edge list from Zachary's original paper, converted to 0-based.
    const EDGES: [(u32, u32); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let mut b = GraphBuilder::with_capacity(EDGES.len());
    for &(u, v) in &EDGES {
        b.add_edge(u, v);
    }
    b.build_with_num_vertices(34).expect("static fixture is valid")
}

/// The paper's running example (Figure 1(b)): a 6-vertex data graph used
/// throughout Sections 1-4. Vertex ids follow the figure (1-based there,
/// 0-based here). The square pattern has exactly three instances in it:
/// {1,2,3,5}, {1,2,5,6}, {2,3,4,5}.
pub fn paper_figure1() -> DataGraph {
    // Edges reconstructed from the figure's instances and Gpsi-tree nodes:
    // squares 1-2-3-5? The instances 1235, 1256, 2345 as 4-cycles and the
    // Gpsi tree children of {6,?,?,?} = {6,1,?,5},{6,5,?,1} require edges
    // 6-1 and 6-5.
    DataGraph::from_edges(
        6,
        &[
            (0, 1), // 1-2
            (0, 4), // 1-5
            (0, 5), // 1-6
            (1, 2), // 2-3
            (1, 4), // 2-5
            (2, 3), // 3-4
            (2, 4), // 3-5
            (3, 4), // 4-5
            (4, 5), // 5-6
        ],
    )
    .expect("static fixture is valid")
}

/// A pinned edge stream over the karate club: the base graph plus three
/// hand-written mutation batches exercising every delta shape — pure
/// insert, insert of a previously deleted edge, delete of a previously
/// inserted edge, and deletes that kill triangles (0-1-2 is a triangle in
/// the base graph; batch 3 destroys it). Used by delta unit tests that
/// need stable, human-checkable expectations.
pub fn karate_stream() -> (DataGraph, Vec<crate::generators::EdgeBatch>) {
    use crate::generators::EdgeBatch;
    let base = karate_club();
    let batches = vec![
        // New edges 4-5 and 9-13 (absent in base), drop 0-1.
        EdgeBatch { insert: vec![(4, 5), (9, 13)], delete: vec![(0, 1)] },
        // Re-insert 0-1, drop the just-added 4-5 and the hub edge 32-33.
        EdgeBatch { insert: vec![(0, 1)], delete: vec![(4, 5), (32, 33)] },
        // Kill the 0-1-2 triangle while adding 16-17.
        EdgeBatch { insert: vec![(16, 17)], delete: vec![(0, 2), (1, 2)] },
    ];
    (base, batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_club_shape() {
        let g = karate_club();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.max_degree(), 17);
        assert!(g.is_symmetric());
        let (_, components) = crate::algo::connected_components(&g);
        assert_eq!(components, 1);
    }

    #[test]
    fn paper_figure1_contains_the_three_squares() {
        let g = paper_figure1();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 9);
        // The three 4-cycles from Section 1 (0-based): {0,1,2,4} via
        // 1-2,2-3,3-5,5-1; {0,1,4,5} via 1-2,2-5,5-6? -> check the cycle
        // 1-2-5-6-1: edges (0,1),(1,4),(4,5),(5,0) all present.
        for cycle in [[0u32, 1, 2, 4], [0, 1, 4, 5], [1, 2, 3, 4]] {
            // Verify the 4-cycle as listed in the paper: consecutive edges.
            let paper_cycles = match cycle {
                [0, 1, 2, 4] => [(0, 1), (1, 2), (2, 4), (4, 0)],
                [0, 1, 4, 5] => [(0, 1), (1, 4), (4, 5), (5, 0)],
                _ => [(1, 2), (2, 3), (3, 4), (4, 1)],
            };
            for (u, v) in paper_cycles {
                assert!(g.has_edge(u, v), "missing edge {u}-{v} of cycle {cycle:?}");
            }
        }
    }

    #[test]
    fn karate_stream_batches_are_valid_against_their_targets() {
        let (base, batches) = karate_stream();
        let mut g = base;
        for (i, batch) in batches.iter().enumerate() {
            for &(u, v) in &batch.insert {
                assert!(!g.has_edge(u, v), "batch {i}: insert {u}-{v} already present");
            }
            for &(u, v) in &batch.delete {
                assert!(g.has_edge(u, v), "batch {i}: delete {u}-{v} absent");
            }
            g = crate::generators::apply_edge_batch(&g, batch).unwrap();
        }
        // Base has triangle 0-1-2; after batch 3 the edges 0-2 and 1-2
        // are gone, so the triangle must not survive.
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(16, 17));
    }
}
