//! Degree statistics and skew characterization.
//!
//! Section 7.2 characterizes each dataset by the exponent γ of its degree
//! distribution `p(d) ∝ d^{-γ}` (WikiTalk γ=1.09, WebGoogle γ=1.66,
//! UsPatent γ=3.13) and Section 3 compares the γ of the `nb`/`ns`
//! distributions after ordering. This module computes degree histograms and
//! a discrete maximum-likelihood estimate of γ so the experiment harness can
//! verify its synthetic stand-ins land in the right skew regime.

use crate::csr::DataGraph;
use crate::order::OrderedGraph;

/// Summary statistics of a degree (or `nb`/`ns`) distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of samples (vertices).
    pub count: usize,
    /// Histogram: `histogram[d]` = number of vertices with value `d`.
    pub histogram: Vec<u64>,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: u32,
    /// Discrete power-law exponent MLE over samples `>= xmin` (see
    /// [`power_law_exponent_mle`]); `None` when fewer than 10 samples
    /// qualify.
    pub gamma: Option<f64>,
}

impl DegreeStats {
    /// Computes stats from raw per-vertex values.
    pub fn from_values(values: impl IntoIterator<Item = u32>) -> DegreeStats {
        let mut histogram: Vec<u64> = Vec::new();
        let mut count = 0usize;
        let mut sum = 0u64;
        let mut max = 0u32;
        for v in values {
            if v as usize >= histogram.len() {
                histogram.resize(v as usize + 1, 0);
            }
            histogram[v as usize] += 1;
            count += 1;
            sum += u64::from(v);
            max = max.max(v);
        }
        if histogram.is_empty() {
            histogram.push(0);
        }
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        let gamma = power_law_exponent_mle(&histogram, 1);
        DegreeStats { count, histogram, mean, max, gamma }
    }

    /// Degree statistics of `g`.
    pub fn of_graph(g: &DataGraph) -> DegreeStats {
        DegreeStats::from_values(g.vertices().map(|v| g.degree(v)))
    }

    /// Statistics of the `nb` ("neighbors before") distribution of the
    /// ordered graph — Property 1 says this is *more* skewed than degree.
    pub fn of_nb(g: &DataGraph, o: &OrderedGraph) -> DegreeStats {
        DegreeStats::from_values(g.vertices().map(|v| o.nb(v)))
    }

    /// Statistics of the `ns` ("neighbors after") distribution — Property 1
    /// says this is *more balanced* than degree.
    pub fn of_ns(g: &DataGraph, o: &OrderedGraph) -> DegreeStats {
        DegreeStats::from_values(g.vertices().map(|v| o.ns(v)))
    }

    /// Fraction of vertices with value `>= d`.
    pub fn tail_fraction(&self, d: u32) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let tail: u64 = self.histogram.iter().skip(d as usize).sum();
        tail as f64 / self.count as f64
    }
}

/// Discrete power-law exponent MLE (Clauset et al. 2009, Eq. 3.7
/// approximation): `γ ≈ 1 + n / Σ ln(d_i / (xmin - 0.5))` over samples
/// `d_i >= xmin`. Returns `None` with fewer than 10 qualifying samples or a
/// degenerate denominator.
pub fn power_law_exponent_mle(histogram: &[u64], xmin: u32) -> Option<f64> {
    let xmin = xmin.max(1);
    let mut n = 0u64;
    let mut log_sum = 0.0f64;
    let shift = f64::from(xmin) - 0.5;
    #[allow(clippy::unnecessary_cast)]
    for (d, &cnt) in histogram.iter().enumerate().skip(xmin as usize) {
        if cnt > 0 {
            n += cnt;
            log_sum += cnt as f64 * (d as f64 / shift).ln();
        }
    }
    if n < 10 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chung_lu, erdos_renyi_gnm};

    #[test]
    fn from_values_basics() {
        let s = DegreeStats::from_values([1u32, 2, 2, 3]);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.histogram, vec![0, 1, 2, 1]);
        assert_eq!(s.gamma, None); // too few samples
    }

    #[test]
    fn empty_values() {
        let s = DegreeStats::from_values(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
        assert_eq!(s.tail_fraction(1), 0.0);
    }

    #[test]
    fn tail_fraction_monotone() {
        let g = erdos_renyi_gnm(1_000, 3_000, 1).unwrap();
        let s = DegreeStats::of_graph(&g);
        assert_eq!(s.tail_fraction(0), 1.0);
        assert!(s.tail_fraction(3) >= s.tail_fraction(6));
        assert_eq!(s.tail_fraction(s.max + 1), 0.0);
    }

    #[test]
    fn mle_recovers_generator_exponent_roughly() {
        // A γ=2.3 Chung–Lu graph should yield a degree-distribution MLE in
        // the same skew regime (the realized exponent differs from the
        // weight exponent, so the band is generous).
        let g = chung_lu(30_000, 6.0, 2.3, 13).unwrap();
        let s = DegreeStats::of_graph(&g);
        let gamma = s.gamma.expect("enough samples");
        assert!((1.5..3.5).contains(&gamma), "gamma {gamma} out of regime");
    }

    #[test]
    fn property_1_nb_more_skewed_ns_more_balanced() {
        // The paper's WebGoogle example: degree γ=1.66 → nb γ=1.54 (more
        // skewed: smaller γ), ns γ=3.97 (more balanced: larger γ).
        let g = chung_lu(30_000, 6.0, 2.0, 23).unwrap();
        let o = OrderedGraph::new(&g);
        let deg = DegreeStats::of_graph(&g).gamma.unwrap();
        let nb = DegreeStats::of_nb(&g, &o).gamma.unwrap();
        let ns = DegreeStats::of_ns(&g, &o).gamma.unwrap();
        assert!(nb < deg, "nb γ={nb} should be below degree γ={deg}");
        assert!(ns > deg, "ns γ={ns} should be above degree γ={deg}");
        // And the ns max must shrink versus the degree max (balance).
        let s_deg = DegreeStats::of_graph(&g);
        let s_ns = DegreeStats::of_ns(&g, &o);
        assert!(s_ns.max < s_deg.max);
    }

    #[test]
    fn mle_handles_degenerate_histograms() {
        // All mass at degree 1 → log_sum driven by ln(1/0.5) > 0, fine;
        // all mass at zero → no qualifying samples.
        assert!(power_law_exponent_mle(&[100], 1).is_none());
        assert!(power_law_exponent_mle(&[0, 5], 1).is_none()); // < 10 samples
        let g = power_law_exponent_mle(&[0, 1000, 10], 1).unwrap();
        assert!(g > 1.0);
    }
}
