//! The *ordered graph* of Section 3.
//!
//! PSgL assigns the data graph a total order: `u < v` iff
//! `(deg(u), id(u)) < (deg(v), id(v))` lexicographically. For each vertex,
//! `nb` counts neighbors of smaller rank and `ns` neighbors of larger rank.
//! Property 1: the `nb` distribution is more skewed than the original degree
//! distribution while `ns` is more balanced — the fact Theorem 5's
//! initial-vertex rule exploits.

use crate::csr::{DataGraph, VertexId};

/// Total vertex order derived from `(degree, id)`, with per-vertex `nb`/`ns`
/// counts precomputed and the adjacency split into its *oriented* halves:
/// `forward(v)` holds the neighbors of larger rank, `backward(v)` those of
/// smaller rank, both id-sorted. A rank window that is one-sided against a
/// known endpoint can walk the matching half instead of the full list and
/// skip the per-element rank comparison — on a skewed graph that is half
/// the intersection volume of every windowed join.
#[derive(Clone, Debug)]
pub struct OrderedGraph {
    /// `rank[v]` = position of `v` in ascending `(degree, id)` order;
    /// ranks are a permutation of `0..n`.
    rank: Vec<u32>,
    /// Number of neighbors with smaller rank ("neighbors before").
    nb: Vec<u32>,
    /// Number of neighbors with larger rank ("neighbors after").
    ns: Vec<u32>,
    /// CSR offsets into `fwd`; `fwd_off[v]..fwd_off[v + 1]` is `forward(v)`.
    fwd_off: Vec<u64>,
    /// Higher-rank neighbors, id-sorted per vertex (`ns[v]` entries each).
    fwd: Vec<VertexId>,
    /// CSR offsets into `bwd`; `bwd_off[v]..bwd_off[v + 1]` is `backward(v)`.
    bwd_off: Vec<u64>,
    /// Smaller-rank neighbors, id-sorted per vertex (`nb[v]` entries each).
    bwd: Vec<VertexId>,
}

impl OrderedGraph {
    /// Computes ranks, the `nb`/`ns` split and the oriented adjacency
    /// halves for `g` in `O(n log n + m)`.
    pub fn new(g: &DataGraph) -> Self {
        let n = g.num_vertices();
        let mut by_rank: Vec<VertexId> = (0..n as VertexId).collect();
        by_rank.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u32; n];
        for (r, &v) in by_rank.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        Self::from_rank(rank, g)
    }

    /// Rebuilds the `nb`/`ns` split and the oriented halves against `g`
    /// while keeping this graph's rank permutation verbatim.
    ///
    /// Dynamic-graph epochs pin the total order at base construction
    /// (re-deriving it from mutated degrees would move canonical instance
    /// representatives and break incremental parity), but the oriented
    /// halves are *adjacency*, not order — they must always reflect the
    /// graph actually being listed. `g` must have the same vertex count
    /// the ranks were derived for.
    pub fn reorient(&self, g: &DataGraph) -> Self {
        assert_eq!(
            self.rank.len(),
            g.num_vertices(),
            "reorient requires the vertex set the ranks were built for"
        );
        Self::from_rank(self.rank.clone(), g)
    }

    /// Derives `nb`/`ns` and the oriented CSR halves of `g` under a fixed
    /// rank permutation in `O(n + m)`.
    fn from_rank(rank: Vec<u32>, g: &DataGraph) -> Self {
        let n = g.num_vertices();
        let mut nb = vec![0u32; n];
        let mut ns = vec![0u32; n];
        for v in g.vertices() {
            let rv = rank[v as usize];
            for &u in g.neighbors(v) {
                if rank[u as usize] < rv {
                    nb[v as usize] += 1;
                } else {
                    ns[v as usize] += 1;
                }
            }
        }
        let mut fwd_off = vec![0u64; n + 1];
        let mut bwd_off = vec![0u64; n + 1];
        for v in 0..n {
            fwd_off[v + 1] = fwd_off[v] + u64::from(ns[v]);
            bwd_off[v + 1] = bwd_off[v] + u64::from(nb[v]);
        }
        let mut fwd = vec![0 as VertexId; fwd_off[n] as usize];
        let mut bwd = vec![0 as VertexId; bwd_off[n] as usize];
        let mut fcur = fwd_off.clone();
        let mut bcur = bwd_off.clone();
        for v in g.vertices() {
            let rv = rank[v as usize];
            // `neighbors(v)` is id-sorted, so each filtered half stays
            // id-sorted without any extra sort.
            for &u in g.neighbors(v) {
                if rank[u as usize] < rv {
                    bwd[bcur[v as usize] as usize] = u;
                    bcur[v as usize] += 1;
                } else {
                    fwd[fcur[v as usize] as usize] = u;
                    fcur[v as usize] += 1;
                }
            }
        }
        OrderedGraph { rank, nb, ns, fwd_off, fwd, bwd_off, bwd }
    }

    /// Neighbors of `v` with larger rank, id-sorted.
    #[inline]
    pub fn forward(&self, v: VertexId) -> &[VertexId] {
        &self.fwd[self.fwd_off[v as usize] as usize..self.fwd_off[v as usize + 1] as usize]
    }

    /// Neighbors of `v` with smaller rank, id-sorted.
    #[inline]
    pub fn backward(&self, v: VertexId) -> &[VertexId] {
        &self.bwd[self.bwd_off[v as usize] as usize..self.bwd_off[v as usize + 1] as usize]
    }

    /// Rank of `v` (0 = smallest degree).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// Whether `u < v` in the total order.
    #[inline]
    pub fn less(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }

    /// Number of neighbors of `v` with smaller rank.
    #[inline]
    pub fn nb(&self, v: VertexId) -> u32 {
        self.nb[v as usize]
    }

    /// Number of neighbors of `v` with larger rank.
    #[inline]
    pub fn ns(&self, v: VertexId) -> u32 {
        self.ns[v as usize]
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Vertices in ascending rank order.
    pub fn vertices_by_rank(&self) -> Vec<VertexId> {
        let mut by_rank = vec![0 as VertexId; self.rank.len()];
        for (v, &r) in self.rank.iter().enumerate() {
            by_rank[r as usize] = v as VertexId;
        }
        by_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: center 0 with leaves 1..=4.
    fn star() -> DataGraph {
        DataGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn rank_orders_by_degree_then_id() {
        let g = star();
        let o = OrderedGraph::new(&g);
        // Leaves (deg 1) rank below the center (deg 4); ties break by id.
        assert_eq!(o.rank(1), 0);
        assert_eq!(o.rank(2), 1);
        assert_eq!(o.rank(3), 2);
        assert_eq!(o.rank(4), 3);
        assert_eq!(o.rank(0), 4);
        assert!(o.less(1, 0));
        assert!(!o.less(0, 1));
    }

    #[test]
    fn nb_ns_split_sums_to_degree() {
        let g = star();
        let o = OrderedGraph::new(&g);
        for v in g.vertices() {
            assert_eq!(o.nb(v) + o.ns(v), g.degree(v));
        }
        // The center sees all leaves below it; leaves see the center above.
        assert_eq!(o.nb(0), 4);
        assert_eq!(o.ns(0), 0);
        assert_eq!(o.nb(1), 0);
        assert_eq!(o.ns(1), 1);
    }

    #[test]
    fn sum_nb_equals_sum_ns_equals_edge_count() {
        // Each edge contributes exactly one `nb` (at its larger end) and one
        // `ns` (at its smaller end): Σnb = Σns = |E|, used in Theorem 5.
        let g = DataGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)])
            .unwrap();
        let o = OrderedGraph::new(&g);
        let sum_nb: u64 = g.vertices().map(|v| u64::from(o.nb(v))).sum();
        let sum_ns: u64 = g.vertices().map(|v| u64::from(o.ns(v))).sum();
        assert_eq!(sum_nb, g.num_edges());
        assert_eq!(sum_ns, g.num_edges());
    }

    #[test]
    fn vertices_by_rank_is_inverse_permutation() {
        let g = star();
        let o = OrderedGraph::new(&g);
        let by_rank = o.vertices_by_rank();
        assert_eq!(by_rank, vec![1, 2, 3, 4, 0]);
        for (r, &v) in by_rank.iter().enumerate() {
            assert_eq!(o.rank(v) as usize, r);
        }
    }

    #[test]
    fn empty_graph_ordering() {
        let g = DataGraph::from_edges(0, &[]).unwrap();
        let o = OrderedGraph::new(&g);
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
        assert!(o.vertices_by_rank().is_empty());
    }
}
