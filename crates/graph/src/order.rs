//! The *ordered graph* of Section 3.
//!
//! PSgL assigns the data graph a total order: `u < v` iff
//! `(deg(u), id(u)) < (deg(v), id(v))` lexicographically. For each vertex,
//! `nb` counts neighbors of smaller rank and `ns` neighbors of larger rank.
//! Property 1: the `nb` distribution is more skewed than the original degree
//! distribution while `ns` is more balanced — the fact Theorem 5's
//! initial-vertex rule exploits.

use crate::csr::{DataGraph, VertexId};

/// Total vertex order derived from `(degree, id)`, with per-vertex `nb`/`ns`
/// counts precomputed.
#[derive(Clone, Debug)]
pub struct OrderedGraph {
    /// `rank[v]` = position of `v` in ascending `(degree, id)` order;
    /// ranks are a permutation of `0..n`.
    rank: Vec<u32>,
    /// Number of neighbors with smaller rank ("neighbors before").
    nb: Vec<u32>,
    /// Number of neighbors with larger rank ("neighbors after").
    ns: Vec<u32>,
}

impl OrderedGraph {
    /// Computes ranks and the `nb`/`ns` split for `g` in `O(n log n + m)`.
    pub fn new(g: &DataGraph) -> Self {
        let n = g.num_vertices();
        let mut by_rank: Vec<VertexId> = (0..n as VertexId).collect();
        by_rank.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u32; n];
        for (r, &v) in by_rank.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        let mut nb = vec![0u32; n];
        let mut ns = vec![0u32; n];
        for v in g.vertices() {
            let rv = rank[v as usize];
            for &u in g.neighbors(v) {
                if rank[u as usize] < rv {
                    nb[v as usize] += 1;
                } else {
                    ns[v as usize] += 1;
                }
            }
        }
        OrderedGraph { rank, nb, ns }
    }

    /// Rank of `v` (0 = smallest degree).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// Whether `u < v` in the total order.
    #[inline]
    pub fn less(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }

    /// Number of neighbors of `v` with smaller rank.
    #[inline]
    pub fn nb(&self, v: VertexId) -> u32 {
        self.nb[v as usize]
    }

    /// Number of neighbors of `v` with larger rank.
    #[inline]
    pub fn ns(&self, v: VertexId) -> u32 {
        self.ns[v as usize]
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Vertices in ascending rank order.
    pub fn vertices_by_rank(&self) -> Vec<VertexId> {
        let mut by_rank = vec![0 as VertexId; self.rank.len()];
        for (v, &r) in self.rank.iter().enumerate() {
            by_rank[r as usize] = v as VertexId;
        }
        by_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: center 0 with leaves 1..=4.
    fn star() -> DataGraph {
        DataGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn rank_orders_by_degree_then_id() {
        let g = star();
        let o = OrderedGraph::new(&g);
        // Leaves (deg 1) rank below the center (deg 4); ties break by id.
        assert_eq!(o.rank(1), 0);
        assert_eq!(o.rank(2), 1);
        assert_eq!(o.rank(3), 2);
        assert_eq!(o.rank(4), 3);
        assert_eq!(o.rank(0), 4);
        assert!(o.less(1, 0));
        assert!(!o.less(0, 1));
    }

    #[test]
    fn nb_ns_split_sums_to_degree() {
        let g = star();
        let o = OrderedGraph::new(&g);
        for v in g.vertices() {
            assert_eq!(o.nb(v) + o.ns(v), g.degree(v));
        }
        // The center sees all leaves below it; leaves see the center above.
        assert_eq!(o.nb(0), 4);
        assert_eq!(o.ns(0), 0);
        assert_eq!(o.nb(1), 0);
        assert_eq!(o.ns(1), 1);
    }

    #[test]
    fn sum_nb_equals_sum_ns_equals_edge_count() {
        // Each edge contributes exactly one `nb` (at its larger end) and one
        // `ns` (at its smaller end): Σnb = Σns = |E|, used in Theorem 5.
        let g = DataGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)])
            .unwrap();
        let o = OrderedGraph::new(&g);
        let sum_nb: u64 = g.vertices().map(|v| u64::from(o.nb(v))).sum();
        let sum_ns: u64 = g.vertices().map(|v| u64::from(o.ns(v))).sum();
        assert_eq!(sum_nb, g.num_edges());
        assert_eq!(sum_ns, g.num_edges());
    }

    #[test]
    fn vertices_by_rank_is_inverse_permutation() {
        let g = star();
        let o = OrderedGraph::new(&g);
        let by_rank = o.vertices_by_rank();
        assert_eq!(by_rank, vec![1, 2, 3, 4, 0]);
        for (r, &v) in by_rank.iter().enumerate() {
            assert_eq!(o.rank(v) as usize, r);
        }
    }

    #[test]
    fn empty_graph_ordering() {
        let g = DataGraph::from_edges(0, &[]).unwrap();
        let o = OrderedGraph::new(&g);
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
        assert!(o.vertices_by_rank().is_empty());
    }
}
