//! A fast, non-cryptographic hasher for integer-keyed collections.
//!
//! PSgL's hot paths hash `u32` vertex ids and `u64` edge keys billions of
//! times (candidate pruning, one-hop indexes, shuffle partitioning). The
//! standard library's SipHash is safe against HashDoS but several times
//! slower for short integer keys. This module implements the FxHash
//! algorithm (the multiply-and-rotate hash used by rustc); the `rustc-hash`
//! crate is not in the approved dependency set, and the algorithm is small
//! enough to own.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state.
///
/// Hashes input by consuming machine words and mixing each with
/// `rotate_left(5) ^ word` followed by a multiplication with a large odd
/// constant (the golden-ratio multiplier).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// Golden-ratio derived odd multiplier (same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            self.add_to_hash(u64::from(word));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single `u64` with the splitmix64 finalizer.
///
/// Used for partitioning decisions where the *low bits* of the result are
/// taken modulo a small worker count — FxHash's single multiply leaves the
/// low bits too structured for that, so this uses a full avalanche mixer.
#[inline]
pub fn hash_u64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_per_value() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // FxHash is weak, but consecutive u32 keys must not collide.
        let hashes: FxHashSet<u64> = (0u32..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_mixed_lengths() {
        // write() must consume every byte (8-, 4-, and 1-byte tails).
        for len in 0..20usize {
            // Start at 1: a trailing 0x00 byte legitimately hashes to the
            // same state in FxHash (0 xor/mul from a 0 state is 0).
            let bytes: Vec<u8> = (1..=len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish());
            if len > 0 {
                let mut c = FxHasher::default();
                let mut shorter = bytes.clone();
                shorter.pop();
                c.write(&shorter);
                assert_ne!(a.finish(), c.finish(), "len {len} collided with len-1");
            }
        }
    }

    #[test]
    fn hash_u64_spreads_small_ints() {
        let buckets = 8u64;
        let mut counts = [0u32; 8];
        for i in 0..8_000u64 {
            counts[(hash_u64(i) % buckets) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
