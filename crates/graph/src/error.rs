//! Error type for graph construction, generation and I/O.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id exceeded `u32` range or the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The exclusive upper bound that was violated.
        bound: u64,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than a simple graph can hold).
    InvalidParameter(String),
    /// An edge-list file could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, bound } => {
                write!(f, "vertex id {vertex} out of range (bound {bound})")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, bound: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        let e = GraphError::InvalidParameter("p must be in [0,1]".into());
        assert!(e.to_string().contains("p must be in [0,1]"));
        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
    }
}
