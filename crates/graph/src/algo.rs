//! Classic graph algorithms used around the listing pipeline.
//!
//! These support the analyses the paper leans on: connected components
//! (the preprocessing drops isolated vertices; components bound where
//! instances can live), BFS (pattern connectivity arguments), and the
//! core decomposition — the arboricity `α(G)` in Chiba–Nishizeki's
//! `O(α(G)·m)` bound satisfies `α(G) ≤ degeneracy + 1`, so
//! [`core_decomposition`] gives a cheap complexity certificate for the
//! centralized baseline on a given graph.

use crate::csr::{DataGraph, VertexId};

/// Galloping (exponential) lower bound: the smallest index `i` in the
/// sorted slice `xs` with `xs[i] >= needle`, or `xs.len()`. Doubling probes
/// from the front make the cost `O(log i)` — cheap when the answer is near
/// where a previous probe left off, which is exactly the access pattern of
/// intersecting a short sorted list against a long CSR neighbor slice.
#[inline]
pub fn gallop_lower_bound(xs: &[VertexId], needle: VertexId) -> usize {
    if xs.is_empty() || xs[0] >= needle {
        return 0;
    }
    let mut hi = 1usize;
    while hi < xs.len() && xs[hi] < needle {
        hi *= 2;
    }
    let lo = hi / 2;
    lo + xs[lo..xs.len().min(hi + 1)].partition_point(|&x| x < needle)
}

/// Whether every element of the sorted slice `needles` appears in the
/// sorted slice `haystack`, in one forward merge pass with galloping skips.
/// Replaces `needles.len()` independent binary searches over `haystack`
/// (the per-edge GRAY verification of Algorithm 2) with a single pass that
/// never re-reads the prefix it already consumed.
pub fn sorted_contains_all(haystack: &[VertexId], needles: &[VertexId]) -> bool {
    let mut rest = haystack;
    for &n in needles {
        let i = gallop_lower_bound(rest, n);
        if i == rest.len() || rest[i] != n {
            return false;
        }
        rest = &rest[i + 1..];
    }
    true
}

/// Intersects two sorted slices into `out` (cleared first). Skewed inputs
/// gallop through the longer side; near-equal sizes fall back to a plain
/// two-pointer merge. Both paths are allocation-free beyond `out`'s
/// capacity, so a caller reusing `out` across calls stays off the heap.
pub fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    // Galloping pays once the size ratio covers its log factor.
    if long.len() / short.len() >= 16 {
        let mut rest = long;
        for &x in short {
            let i = gallop_lower_bound(rest, x);
            if i == rest.len() {
                return;
            }
            if rest[i] == x {
                out.push(x);
                rest = &rest[i + 1..];
            } else {
                rest = &rest[i..];
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(short[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Connected components by iterative BFS. Returns `(labels, count)` where
/// `labels[v]` is a component id in `0..count` (numbered by discovery).
pub fn connected_components(g: &DataGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in g.vertices() {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &DataGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// Core decomposition (Matula–Beck peeling in `O(n + m)`): returns
/// `(core_numbers, degeneracy)`. The degeneracy is the largest `k` such
/// that a non-empty `k`-core exists; it upper-bounds the arboricity
/// (`α(G) ≤ degeneracy`), which in turn drives the Chiba–Nishizeki
/// triangle-listing bound `O(α(G)·m)`.
pub fn core_decomposition(g: &DataGraph) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let max_deg = g.max_degree() as usize;
    // Bucket sort vertices by degree.
    let mut degree: Vec<u32> = g.vertices().map(|v| g.degree(v)).collect();
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d as usize + 1] += 1;
    }
    for i in 1..bins.len() {
        bins[i] += bins[i - 1];
    }
    let mut position = vec![0usize; n]; // vertex -> index in `sorted`
    let mut sorted = vec![0 as VertexId; n]; // peel order
    let mut cursor = bins.clone();
    for v in g.vertices() {
        let d = degree[v as usize] as usize;
        position[v as usize] = cursor[d];
        sorted[cursor[d]] = v;
        cursor[d] += 1;
    }
    // bin_start[d] = first index in `sorted` whose current degree is >= d.
    let mut bin_start = bins;
    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = sorted[i];
        let dv = degree[v as usize];
        core[v as usize] = dv;
        degeneracy = degeneracy.max(dv);
        for &u in g.neighbors(v) {
            if degree[u as usize] > dv {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket.
                let du = degree[u as usize] as usize;
                let pu = position[u as usize];
                let pw = bin_start[du];
                let w = sorted[pw];
                if u != w {
                    sorted.swap(pu, pw);
                    position[u as usize] = pw;
                    position[w as usize] = pu;
                }
                bin_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    (core, degeneracy)
}

/// Global clustering coefficient: `3·triangles / wedges` where a wedge is
/// an (unordered) path of length 2. Returns 0 for wedge-free graphs.
pub fn global_clustering_coefficient(g: &DataGraph, triangles: u64) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = u64::from(g.degree(v));
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;

    #[test]
    fn gallop_lower_bound_matches_partition_point() {
        let xs: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11, 40, 41, 100];
        for needle in 0..105 {
            assert_eq!(
                gallop_lower_bound(&xs, needle),
                xs.partition_point(|&x| x < needle),
                "needle {needle}"
            );
        }
        assert_eq!(gallop_lower_bound(&[], 5), 0);
    }

    #[test]
    fn sorted_contains_all_cases() {
        let hay: Vec<VertexId> = (0..100).map(|i| i * 3).collect();
        assert!(sorted_contains_all(&hay, &[]));
        assert!(sorted_contains_all(&hay, &[0, 3, 297]));
        assert!(sorted_contains_all(&hay, &[99]));
        assert!(!sorted_contains_all(&hay, &[1]));
        assert!(!sorted_contains_all(&hay, &[0, 3, 298]));
        assert!(!sorted_contains_all(&[], &[7]));
        // Duplicate needles need duplicate haystack entries (CSR slices
        // are strictly increasing, so callers never hit this; the merge
        // semantics are still well-defined).
        assert!(!sorted_contains_all(&hay, &[3, 3]));
    }

    #[test]
    fn intersect_sorted_both_paths_agree() {
        let a: Vec<VertexId> = (0..1000).filter(|x| x % 3 == 0).collect();
        let b: Vec<VertexId> = (0..1000).filter(|x| x % 5 == 0).collect();
        let expected: Vec<VertexId> = (0..1000).filter(|x| x % 15 == 0).collect();
        let mut out = Vec::new();
        // Merge path (comparable sizes).
        intersect_sorted_into(&a, &b, &mut out);
        assert_eq!(out, expected);
        // Galloping path (skewed sizes), both argument orders.
        let tiny: Vec<VertexId> = vec![0, 30, 31, 990];
        intersect_sorted_into(&tiny, &b, &mut out);
        assert_eq!(out, vec![0, 30, 990]);
        intersect_sorted_into(&b, &tiny, &mut out);
        assert_eq!(out, vec![0, 30, 990]);
        // Empty sides clear the output.
        intersect_sorted_into(&a, &[], &mut out);
        assert!(out.is_empty());
    }

    fn two_triangles() -> DataGraph {
        DataGraph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn components_found() {
        let g = two_triangles();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // two triangles + isolated vertex 6
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = DataGraph::from_edges(0, &[]).unwrap();
        assert_eq!(connected_components(&g).1, 0);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = DataGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn core_numbers_of_clique_plus_tail() {
        // K4 on {0,1,2,3} plus tail 3-4-5.
        let g = DataGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        )
        .unwrap();
        let (core, degeneracy) = core_decomposition(&g);
        assert_eq!(degeneracy, 3);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn core_decomposition_of_cycle_is_two() {
        let g = DataGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (core, degeneracy) = core_decomposition(&g);
        assert_eq!(degeneracy, 2);
        assert!(core.iter().all(|&c| c == 2));
    }

    #[test]
    fn core_decomposition_handles_er_graph() {
        let g = erdos_renyi_gnm(200, 800, 9).unwrap();
        let (core, degeneracy) = core_decomposition(&g);
        assert_eq!(core.len(), 200);
        // Every core number is at most the degree and at most degeneracy.
        for v in g.vertices() {
            assert!(core[v as usize] <= g.degree(v));
            assert!(core[v as usize] <= degeneracy);
        }
        // The degeneracy core is non-empty.
        assert!(core.contains(&degeneracy));
    }

    #[test]
    fn clustering_coefficient_extremes() {
        // Triangle: 1 triangle, 3 wedges → coefficient 1.
        let g = DataGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(global_clustering_coefficient(&g, 1), 1.0);
        // Star: no triangles.
        let star = DataGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(global_clustering_coefficient(&star, 0), 0.0);
        // Edgeless.
        let empty = DataGraph::from_edges(2, &[]).unwrap();
        assert_eq!(global_clustering_coefficient(&empty, 0), 0.0);
    }
}
