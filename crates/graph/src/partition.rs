//! Vertex partitioning across workers.
//!
//! Section 5.1: *"In PSgL, the data graph is simply random partitioned"* —
//! a hash of the vertex id picks the owning worker. The partitioner is the
//! single source of truth for vertex placement used by the BSP engine, the
//! distribution strategies (which need `map(vp) belongs to worker i`,
//! Equation 4) and the MapReduce shuffle.

use crate::csr::{DataGraph, VertexId};
use crate::hash::hash_u64;

/// Random (hash) partitioner over `k` workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashPartitioner {
    workers: u32,
    /// Salt so different runs/engines can decorrelate placements.
    salt: u64,
    /// Chaos knob: per-mille of vertices force-routed to worker 0 on top
    /// of the hash placement. 0 (the default) is the unskewed production
    /// path; the simulation harness uses nonzero values to manufacture the
    /// hot-partition scenarios the paper's workload-aware strategies are
    /// supposed to absorb (Section 5.3).
    hot_per_mille: u16,
}

impl HashPartitioner {
    /// Creates a partitioner over `workers` workers (must be >= 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        HashPartitioner { workers: workers as u32, salt: 0, hot_per_mille: 0 }
    }

    /// Creates a salted partitioner; different salts give independent
    /// placements for the same worker count.
    pub fn with_salt(workers: usize, salt: u64) -> Self {
        assert!(workers >= 1, "need at least one worker");
        HashPartitioner { workers: workers as u32, salt, hot_per_mille: 0 }
    }

    /// Creates a deliberately skewed partitioner: on top of the salted
    /// hash placement, roughly `hot_per_mille`‰ of vertices (chosen by an
    /// independent hash, deterministically) are re-routed to worker 0.
    /// Values ≥ 1000 send *every* vertex to worker 0.
    pub fn with_skew(workers: usize, salt: u64, hot_per_mille: u16) -> Self {
        assert!(workers >= 1, "need at least one worker");
        HashPartitioner { workers: workers as u32, salt, hot_per_mille }
    }

    /// Number of workers.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// Worker owning vertex `v`.
    ///
    /// The avalanched hash is reduced to `0..workers` with Lemire's
    /// multiply-shift (`(h * k) >> 64`) instead of `%`: a multiply and a
    /// shift replace the division, and the reduction reads the hash's high
    /// bits, which splitmix64 mixes just as thoroughly as the low ones.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        if self.hot_per_mille > 0 {
            // Independent hash stream (distinct constant) so the skew
            // selection does not correlate with the placement hash.
            let s = hash_u64(u64::from(v) ^ self.salt ^ 0xC0FF_EE00_D15E_A5E5);
            if (((u128::from(s) * 1000) >> 64) as u16) < self.hot_per_mille {
                return 0;
            }
        }
        let h = hash_u64(u64::from(v) ^ self.salt);
        ((u128::from(h) * u128::from(self.workers)) >> 64) as usize
    }

    /// Vertex lists of a *subset* of partitions: one list per entry of
    /// `parts` (same order), covering vertices `0..num_vertices`. This is
    /// the partition-subset loading path a distributed worker uses — it
    /// hosts a few of the global partitions and needs exactly their
    /// vertices, without materializing the other partitions' lists.
    pub fn owned_vertices(&self, num_vertices: usize, parts: &[usize]) -> Vec<Vec<VertexId>> {
        let mut slot_of = vec![usize::MAX; self.workers as usize];
        for (slot, &p) in parts.iter().enumerate() {
            assert!(p < self.workers as usize, "partition {p} out of range");
            slot_of[p] = slot;
        }
        let mut owned = vec![Vec::new(); parts.len()];
        for v in 0..num_vertices as VertexId {
            let slot = slot_of[self.owner(v)];
            if slot != usize::MAX {
                owned[slot].push(v);
            }
        }
        owned
    }

    /// Per-worker vertex counts for `g` — used to report partition balance.
    pub fn vertex_counts(&self, g: &DataGraph) -> Vec<usize> {
        let mut counts = vec![0usize; self.workers as usize];
        for v in g.vertices() {
            counts[self.owner(v)] += 1;
        }
        counts
    }

    /// Per-worker degree sums (edge workload proxy) for `g`.
    pub fn degree_sums(&self, g: &DataGraph) -> Vec<u64> {
        let mut sums = vec![0u64; self.workers as usize];
        for v in g.vertices() {
            sums[self.owner(v)] += u64::from(g.degree(v));
        }
        sums
    }

    /// Max/mean imbalance factor of a per-worker load vector
    /// (1.0 = perfectly balanced; undefined/1.0 for all-zero loads).
    pub fn imbalance(loads: &[u64]) -> f64 {
        let total: u64 = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;

    #[test]
    fn owner_is_stable_and_in_range() {
        let p = HashPartitioner::new(7);
        for v in 0..1000u32 {
            let o = p.owner(v);
            assert!(o < 7);
            assert_eq!(o, p.owner(v));
        }
        // Golden assignments pin the multiply-shift (Lemire) reduction:
        // `owner = (hash_u64(v) * workers) >> 64`. A change to the hash or
        // the reduction shows up here before it silently reshuffles every
        // partition-dependent artifact.
        assert_eq!((0..8).map(|v| p.owner(v)).collect::<Vec<_>>(), vec![6, 3, 4, 0, 3, 2, 5, 2]);
        let p2 = HashPartitioner::with_salt(3, 0xfeed);
        assert_eq!((0..8).map(|v| p2.owner(v)).collect::<Vec<_>>(), vec![0, 1, 1, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn single_worker_owns_everything() {
        let p = HashPartitioner::new(1);
        assert!((0..100).all(|v| p.owner(v) == 0));
    }

    #[test]
    fn salting_changes_placement() {
        let a = HashPartitioner::with_salt(8, 1);
        let b = HashPartitioner::with_salt(8, 2);
        let diffs = (0..1000u32).filter(|&v| a.owner(v) != b.owner(v)).count();
        assert!(diffs > 500, "salts should decorrelate placements ({diffs} differ)");
    }

    #[test]
    fn vertex_counts_are_roughly_balanced() {
        let g = erdos_renyi_gnm(10_000, 20_000, 3).unwrap();
        let p = HashPartitioner::new(10);
        let counts = p.vertex_counts(&g);
        assert_eq!(counts.iter().sum::<usize>(), g.num_vertices());
        for &c in &counts {
            assert!((800..1200).contains(&c), "unbalanced partition: {counts:?}");
        }
    }

    #[test]
    fn degree_sums_account_every_half_edge() {
        let g = erdos_renyi_gnm(500, 1_500, 5).unwrap();
        let p = HashPartitioner::new(4);
        let sums = p.degree_sums(&g);
        assert_eq!(sums.iter().sum::<u64>(), g.degree_sum());
    }

    #[test]
    fn owned_vertices_selects_partition_subsets() {
        let p = HashPartitioner::with_salt(5, 99);
        let n = 1000usize;
        // The full set, queried per-partition, reproduces owner() exactly.
        let all = p.owned_vertices(n, &[0, 1, 2, 3, 4]);
        assert_eq!(all.iter().map(Vec::len).sum::<usize>(), n);
        for (part, vs) in all.iter().enumerate() {
            assert!(vs.iter().all(|&v| p.owner(v) == part));
            assert!(vs.windows(2).all(|w| w[0] < w[1]), "ascending vertex order");
        }
        // A subset, in arbitrary order, yields the same per-partition lists.
        let subset = p.owned_vertices(n, &[3, 1]);
        assert_eq!(subset[0], all[3]);
        assert_eq!(subset[1], all[1]);
        // Empty subset is fine.
        assert!(p.owned_vertices(n, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owned_vertices_rejects_bad_partition() {
        HashPartitioner::new(3).owned_vertices(10, &[3]);
    }

    #[test]
    fn imbalance_metric() {
        assert_eq!(HashPartitioner::imbalance(&[5, 5, 5, 5]), 1.0);
        assert_eq!(HashPartitioner::imbalance(&[10, 0, 0, 10]), 2.0);
        assert_eq!(HashPartitioner::imbalance(&[0, 0]), 1.0);
        assert_eq!(HashPartitioner::imbalance(&[]), 1.0);
    }

    #[test]
    fn skew_routes_hot_vertices_to_worker_zero() {
        // Zero skew is bit-identical to the plain salted partitioner.
        let plain = HashPartitioner::with_salt(4, 7);
        let zero = HashPartitioner::with_skew(4, 7, 0);
        assert!((0..1000u32).all(|v| plain.owner(v) == zero.owner(v)));
        // 300‰ skew: worker 0 owns its hash share plus ~30% of the rest.
        let skewed = HashPartitioner::with_skew(4, 7, 300);
        let n = 10_000u32;
        let hot = (0..n).filter(|&v| skewed.owner(v) == 0).count();
        assert!(
            (4000..5100).contains(&hot),
            "expected ~25% + 30%·75% ≈ 47.5% on worker 0, got {hot} of {n}"
        );
        // Non-hot vertices keep their hash placement.
        assert!((0..n).all(|v| skewed.owner(v) == 0 || skewed.owner(v) == plain.owner(v)));
        // Full skew funnels everything.
        let all = HashPartitioner::with_skew(4, 7, 1000);
        assert!((0..1000u32).all(|v| all.owner(v) == 0));
        // Deterministic: same config, same placement.
        let again = HashPartitioner::with_skew(4, 7, 300);
        assert!((0..1000u32).all(|v| skewed.owner(v) == again.owner(v)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        HashPartitioner::new(0);
    }
}
