//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP/KONECT graphs plus one Erdős–Rényi graph
//! produced by NetworkX. Those datasets are not redistributable here, so the
//! experiment harness substitutes synthetic graphs whose *degree skew*
//! matches the paper's reported power-law exponents (γ ≈ 1.09 for WikiTalk,
//! 1.66 for WebGoogle, 3.13 for UsPatent — Section 7.2). Every conclusion
//! the paper draws from those graphs is a function of that skew
//! (see `DESIGN.md` §3).
//!
//! All generators are deterministic given a seed and return clean
//! [`DataGraph`]s (symmetric, loop-free, deduplicated).

use crate::builder::GraphBuilder;
use crate::csr::{DataGraph, VertexId};
use crate::error::GraphError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges drawn uniformly from
/// all vertex pairs. Fails if `m` exceeds the simple-graph capacity.
pub fn erdos_renyi_gnm(n: usize, m: u64, seed: u64) -> Result<DataGraph, GraphError> {
    let capacity = n as u64 * (n as u64 - 1) / 2;
    if n < 2 && m > 0 {
        return Err(GraphError::InvalidParameter("G(n,m) needs n >= 2 for m > 0".into()));
    }
    if m > capacity {
        return Err(GraphError::InvalidParameter(format!(
            "m = {m} exceeds simple-graph capacity {capacity} for n = {n}"
        )));
    }
    if m > capacity / 2 {
        return Err(GraphError::InvalidParameter(format!(
            "m = {m} too dense for rejection sampling (capacity {capacity}); use G(n,p)"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = crate::hash::FxHashSet::default();
    seen.reserve(m as usize);
    let mut builder = GraphBuilder::with_capacity(m as usize);
    while seen.len() < m as usize {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = (u64::from(u.min(v)) << 32) | u64::from(u.max(v));
        if seen.insert(key) {
            builder.add_edge(u, v);
        }
    }
    builder.build_with_num_vertices(n)
}

/// Erdős–Rényi `G(n, p)` via geometric edge skipping — `O(n + m)` expected.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Result<DataGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!("p = {p} must be in [0, 1]")));
    }
    let mut builder = GraphBuilder::new();
    if p > 0.0 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let log_1p = (1.0 - p).ln();
        // Walk the strictly-upper-triangular pair space in row-major order,
        // jumping geometrically between successes (Batagelj–Brandes).
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        let n = n as i64;
        while v < n {
            let skip = if p >= 1.0 {
                1.0
            } else {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                (r.ln() / log_1p).floor() + 1.0
            };
            w += skip as i64;
            while w >= v && v < n {
                w -= v;
                v += 1;
            }
            if v < n {
                builder.add_edge(w as VertexId, v as VertexId);
            }
        }
    }
    builder.build_with_num_vertices(n)
}

/// Samples a discrete power-law degree sequence `p(d) ∝ d^{-gamma}` over
/// `[dmin, dmax]` by inverse-CDF of the continuous Pareto, floored.
pub fn power_law_degrees(
    n: usize,
    gamma: f64,
    dmin: u32,
    dmax: u32,
    seed: u64,
) -> Result<Vec<f64>, GraphError> {
    if gamma <= 1.0 {
        return Err(GraphError::InvalidParameter(format!("gamma = {gamma} must be > 1")));
    }
    if dmin == 0 || dmin > dmax {
        return Err(GraphError::InvalidParameter(format!(
            "need 0 < dmin <= dmax (got {dmin}, {dmax})"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let exponent = -1.0 / (gamma - 1.0);
    let lo = f64::from(dmin);
    let hi = f64::from(dmax);
    // CDF-inverse of the truncated Pareto: draw u, map through
    // d = lo * (1 - u(1 - (hi/lo)^{1-γ}))^{-1/(γ-1)}.
    let tail = (hi / lo).powf(1.0 - gamma);
    Ok((0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let d = lo * (1.0 - u * (1.0 - tail)).powf(exponent);
            d.min(hi)
        })
        .collect())
}

/// Chung–Lu random graph from explicit expected-degree weights.
///
/// Edge `(i, j)` exists with probability `min(1, w_i w_j / Σw)`; generation
/// is the `O(n + m)` sorted-weights skipping algorithm of Miller & Hagberg.
/// Vertex ids are randomly permuted afterwards so that id does not encode
/// degree.
pub fn chung_lu_from_weights(weights: &[f64], seed: u64) -> Result<DataGraph, GraphError> {
    let n = weights.len();
    if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(GraphError::InvalidParameter("weights must be finite and >= 0".into()));
    }
    let total: f64 = weights.iter().sum();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    if total > 0.0 && n >= 2 {
        // Sort indices by descending weight so p is non-increasing in j.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            weights[b as usize].partial_cmp(&weights[a as usize]).unwrap()
        });
        let w = |i: usize| weights[order[i] as usize];
        for i in 0..n - 1 {
            if w(i) <= 0.0 {
                break;
            }
            let mut j = i + 1;
            let mut p = (w(i) * w(j) / total).min(1.0);
            while j < n && p > 0.0 {
                if p < 1.0 {
                    let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                    j += (r.ln() / (1.0 - p).ln()) as usize;
                }
                if j < n {
                    let q = (w(i) * w(j) / total).min(1.0);
                    if rng.gen::<f64>() < q / p {
                        builder.add_edge(order[i], order[j]);
                    }
                    p = q;
                    j += 1;
                }
            }
        }
    }
    // Random relabeling: sorted position must not leak into vertex id.
    let mut relabel: Vec<VertexId> = (0..n as VertexId).collect();
    relabel.shuffle(&mut rng);
    let mut permuted = GraphBuilder::with_capacity(builder.raw_edge_count());
    for &(u, v) in builder.raw_edges() {
        permuted.add_edge(relabel[u as usize], relabel[v as usize]);
    }
    permuted.build_with_num_vertices(n)
}

/// Chung–Lu power-law graph: samples a `d^{-gamma}` expected-degree sequence,
/// rescales it to the target average degree, caps weights at `√Σw` (so edge
/// probabilities stay meaningful) and generates.
///
/// `avg_degree` is the *expected* average; the realized average is close but
/// not exact (capping and the `min(1, ·)` clamp bias it slightly downward
/// for extreme γ).
pub fn chung_lu(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> Result<DataGraph, GraphError> {
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter("avg_degree must be > 0".into()));
    }
    let dmax = (n.saturating_sub(1)).max(1) as u32;
    let mut weights = power_law_degrees(n, gamma, 1, dmax, seed ^ 0x9e37_79b9)?;
    let mean: f64 = weights.iter().sum::<f64>() / n.max(1) as f64;
    let scale = avg_degree / mean;
    for w in &mut weights {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum();
    let cap = total.sqrt();
    for w in &mut weights {
        if *w > cap {
            *w = cap;
        }
    }
    chung_lu_from_weights(&weights, seed)
}

/// Barabási–Albert preferential attachment: starts from a star of
/// `m + 1` vertices and attaches each new vertex to `m` distinct existing
/// vertices chosen proportionally to degree. Produces γ ≈ 3 power laws.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<DataGraph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter("m must be >= 1".into()));
    }
    if n < m + 1 {
        return Err(GraphError::InvalidParameter(format!("n = {n} must exceed m = {m}")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n * m);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for leaf in 1..=m {
        builder.add_edge(0, leaf as VertexId);
        endpoints.push(0);
        endpoints.push(leaf as VertexId);
    }
    let mut targets = crate::hash::FxHashSet::default();
    for v in (m + 1)..n {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            builder.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    builder.build_with_num_vertices(n)
}

/// One batch of edge mutations against a [`DataGraph`]. Inserts and
/// deletes are disjoint within a batch (the generators guarantee it;
/// [`apply_edge_batch`] resolves any overlap insert-wins), each list is
/// sorted with normalized endpoints (`u < v`), and every insert is absent
/// from — and every delete present in — the graph the batch targets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Edges to add; absent from the target graph.
    pub insert: Vec<(VertexId, VertexId)>,
    /// Edges to remove; present in the target graph.
    pub delete: Vec<(VertexId, VertexId)>,
}

impl EdgeBatch {
    /// Total number of edge mutations in the batch.
    pub fn len(&self) -> usize {
        self.insert.len() + self.delete.len()
    }

    /// Whether the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// Applies a batch to a graph, producing the post-mutation graph from
/// scratch: final edge set = (current − deletes) ∪ inserts, so an edge
/// appearing in both lists ends up present (insert wins). The vertex count
/// is preserved — mutations may not reference vertices outside the graph.
pub fn apply_edge_batch(g: &DataGraph, batch: &EdgeBatch) -> Result<DataGraph, GraphError> {
    let mut edges: std::collections::BTreeSet<(VertexId, VertexId)> =
        g.edges().map(|(u, v)| if u <= v { (u, v) } else { (v, u) }).collect();
    for &(u, v) in &batch.delete {
        edges.remove(&if u <= v { (u, v) } else { (v, u) });
    }
    for &(u, v) in &batch.insert {
        edges.insert(if u <= v { (u, v) } else { (v, u) });
    }
    let list: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
    DataGraph::from_edges(g.num_vertices(), &list)
}

/// Generates `num_batches` seeded random mutation batches against `base`,
/// each drawing ~`batch_edges` mutations split between inserts (sampled
/// from the current non-edges by rejection) and deletes (sampled uniformly
/// from the current edges). `insert_fraction` sets the insert/delete mix.
/// Batches are sequential: batch `i + 1` targets the graph after batch `i`.
/// Within a batch no edge is touched twice, so inserts and deletes are
/// disjoint and the signed semantics are unambiguous.
pub fn dynamic_batches(
    base: &DataGraph,
    num_batches: usize,
    batch_edges: usize,
    insert_fraction: f64,
    seed: u64,
) -> Vec<EdgeBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = base.num_vertices() as VertexId;
    let mut present: crate::hash::FxHashSet<(VertexId, VertexId)> =
        base.edges().map(|(u, v)| if u <= v { (u, v) } else { (v, u) }).collect();
    let mut edge_list: Vec<(VertexId, VertexId)> = present.iter().copied().collect();
    edge_list.sort_unstable();
    let mut batches = Vec::with_capacity(num_batches);
    for _ in 0..num_batches {
        let mut batch = EdgeBatch::default();
        let mut touched: crate::hash::FxHashSet<(VertexId, VertexId)> =
            crate::hash::FxHashSet::default();
        for _ in 0..batch_edges {
            if n >= 2 && rng.gen::<f64>() < insert_fraction {
                // Rejection-sample a fresh non-edge; bail after a bounded
                // number of tries so dense graphs can't stall the stream.
                for _ in 0..64 {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    let e = if u <= v { (u, v) } else { (v, u) };
                    if u == v || present.contains(&e) || touched.contains(&e) {
                        continue;
                    }
                    touched.insert(e);
                    batch.insert.push(e);
                    break;
                }
            } else if !edge_list.is_empty() {
                let i = rng.gen_range(0..edge_list.len());
                let e = edge_list.swap_remove(i);
                if touched.contains(&e) {
                    edge_list.push(e);
                    continue;
                }
                touched.insert(e);
                batch.delete.push(e);
            }
        }
        for &e in &batch.insert {
            present.insert(e);
            edge_list.push(e);
        }
        for e in &batch.delete {
            present.remove(e);
        }
        edge_list.retain(|e| present.contains(e));
        batch.insert.sort_unstable();
        batch.delete.sort_unstable();
        batches.push(batch);
    }
    batches
}

/// The dynamic-graph fixture used by the delta bench and sim harness: a
/// Chung-Lu power-law base plus a seeded stream of mutation batches. Batch
/// sizing is the caller's churn knob — `batch_edges / num_edges` is the
/// per-batch churn rate.
pub fn chung_lu_dynamic(
    n: usize,
    avg_degree: f64,
    gamma: f64,
    seed: u64,
    num_batches: usize,
    batch_edges: usize,
) -> Result<(DataGraph, Vec<EdgeBatch>), GraphError> {
    let base = chung_lu(n, avg_degree, gamma, seed)?;
    let batches = dynamic_batches(&base, num_batches, batch_edges, 0.5, seed ^ 0x5eed_cafe);
    Ok((base, batches))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count_and_is_simple() {
        let g = erdos_renyi_gnm(100, 300, 1).unwrap();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
        assert!(g.is_symmetric());
    }

    #[test]
    fn gnm_rejects_impossible_density() {
        assert!(erdos_renyi_gnm(4, 7, 1).is_err()); // capacity 6
        assert!(erdos_renyi_gnm(1, 1, 1).is_err());
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = erdos_renyi_gnm(50, 100, 7).unwrap();
        let b = erdos_renyi_gnm(50, 100, 7).unwrap();
        let c = erdos_renyi_gnm(50, 100, 8).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi_gnp(n, p, 11).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(20, 0.0, 3).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_gnp(20, 1.0, 3).unwrap();
        assert_eq!(full.num_edges(), 190);
        assert!(erdos_renyi_gnp(20, 1.5, 3).is_err());
        assert!(erdos_renyi_gnp(20, -0.1, 3).is_err());
    }

    #[test]
    fn power_law_degrees_respects_bounds_and_skew() {
        let degs = power_law_degrees(20_000, 2.2, 1, 1_000, 5).unwrap();
        assert!(degs.iter().all(|&d| (1.0..=1_000.0).contains(&d)));
        // Strong skew: the median must sit near dmin while the max is large.
        let mut sorted = degs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted[10_000] < 3.0);
        assert!(sorted[19_999] > 50.0);
        assert!(power_law_degrees(10, 1.0, 1, 10, 5).is_err());
        assert!(power_law_degrees(10, 2.0, 0, 10, 5).is_err());
        assert!(power_law_degrees(10, 2.0, 5, 4, 5).is_err());
    }

    #[test]
    fn chung_lu_hits_target_average_degree() {
        let n = 5_000;
        let g = chung_lu(n, 8.0, 2.5, 42).unwrap();
        let avg = g.degree_sum() as f64 / n as f64;
        assert!((avg - 8.0).abs() < 1.5, "avg degree {avg} too far from 8");
        assert!(g.is_symmetric());
    }

    #[test]
    fn chung_lu_skew_increases_with_smaller_gamma() {
        // The weight cap bounds the maximum, so compare tail mass instead:
        // the number of heavy vertices (deg >= 5x average) must grow
        // sharply as γ shrinks.
        let heavy = |g: &crate::csr::DataGraph| g.vertices().filter(|&v| g.degree(v) >= 40).count();
        let skewed = chung_lu(5_000, 8.0, 1.5, 9).unwrap();
        let mild = chung_lu(5_000, 8.0, 3.2, 9).unwrap();
        assert!(
            heavy(&skewed) > 3 * heavy(&mild).max(1),
            "γ=1.5 heavy {} should dwarf γ=3.2 heavy {}",
            heavy(&skewed),
            heavy(&mild)
        );
    }

    #[test]
    fn chung_lu_from_weights_validates() {
        assert!(chung_lu_from_weights(&[1.0, f64::NAN], 1).is_err());
        assert!(chung_lu_from_weights(&[1.0, -2.0], 1).is_err());
        let g = chung_lu_from_weights(&[], 1).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let g = chung_lu_from_weights(&[0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(1_000, 3, 17).unwrap();
        assert_eq!(g.num_vertices(), 1_000);
        // Star seed has m edges; each of the n-m-1 later vertices adds m.
        assert_eq!(g.num_edges(), 3 + (1_000 - 4) as u64 * 3);
        // Preferential attachment grows hubs.
        assert!(g.max_degree() > 30);
        assert!(barabasi_albert(3, 3, 1).is_err());
        assert!(barabasi_albert(10, 0, 1).is_err());
    }

    #[test]
    fn dynamic_batches_are_well_formed_and_sequential() {
        let base = erdos_renyi_gnm(60, 200, 21).unwrap();
        let batches = dynamic_batches(&base, 8, 12, 0.5, 7);
        assert_eq!(batches.len(), 8);
        let mut g = base;
        for batch in &batches {
            assert!(!batch.is_empty());
            let mut touched = crate::hash::FxHashSet::default();
            for &(u, v) in &batch.insert {
                assert!(u < v, "insert not normalized: {u}-{v}");
                assert!(!g.has_edge(u, v), "insert {u}-{v} already present");
                assert!(touched.insert((u, v)), "edge {u}-{v} touched twice");
            }
            for &(u, v) in &batch.delete {
                assert!(u < v, "delete not normalized: {u}-{v}");
                assert!(g.has_edge(u, v), "delete {u}-{v} absent");
                assert!(touched.insert((u, v)), "edge {u}-{v} touched twice");
            }
            let next = apply_edge_batch(&g, batch).unwrap();
            assert_eq!(
                next.num_edges(),
                g.num_edges() + batch.insert.len() as u64 - batch.delete.len() as u64
            );
            g = next;
        }
    }

    #[test]
    fn dynamic_batches_deterministic_by_seed() {
        let base = erdos_renyi_gnm(40, 100, 3).unwrap();
        assert_eq!(dynamic_batches(&base, 4, 6, 0.4, 9), dynamic_batches(&base, 4, 6, 0.4, 9));
        assert_ne!(dynamic_batches(&base, 4, 6, 0.4, 9), dynamic_batches(&base, 4, 6, 0.4, 10));
    }

    #[test]
    fn apply_edge_batch_insert_wins_on_overlap() {
        let g = crate::csr::DataGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let batch = EdgeBatch { insert: vec![(0, 1), (2, 3)], delete: vec![(0, 1), (1, 2)] };
        let next = apply_edge_batch(&g, &batch).unwrap();
        assert!(next.has_edge(0, 1), "insert must win over a same-batch delete");
        assert!(!next.has_edge(1, 2));
        assert!(next.has_edge(2, 3));
        assert_eq!(next.num_vertices(), 4);
    }

    #[test]
    fn chung_lu_dynamic_fixture_is_deterministic() {
        let (a_base, a_batches) = chung_lu_dynamic(500, 6.0, 2.0, 11, 5, 10).unwrap();
        let (b_base, b_batches) = chung_lu_dynamic(500, 6.0, 2.0, 11, 5, 10).unwrap();
        assert_eq!(a_base.num_edges(), b_base.num_edges());
        assert_eq!(a_batches, b_batches);
        assert_eq!(a_batches.len(), 5);
    }
}
