//! SNAP-style edge-list I/O.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment lines (SNAP format). [`load_edge_list`] reads that format and
//! applies the paper's preprocessing through [`GraphBuilder::build`]
//! (symmetrize, drop loops, drop isolated vertices, densify ids), so a real
//! SNAP download can be swapped in for the synthetic stand-ins directly.

use crate::builder::GraphBuilder;
use crate::csr::{DataGraph, VertexId};
use crate::error::GraphError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses an edge list from any reader. Lines starting with `#` or `%` and
/// blank lines are ignored; other lines must start with two integer vertex
/// ids (extra columns, e.g. KONECT timestamps, are ignored).
pub fn read_edge_list<R: Read>(reader: R) -> Result<DataGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_vertex(it.next(), line_no)?;
        let v = parse_vertex(it.next(), line_no)?;
        builder.add_edge(u, v);
    }
    builder.build()
}

fn parse_vertex(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or(GraphError::Parse { line, message: "expected two vertex ids".into() })?;
    tok.parse::<VertexId>()
        .map_err(|e| GraphError::Parse { line, message: format!("bad vertex id {tok:?}: {e}") })
}

/// Loads an edge-list file (see [`read_edge_list`]).
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<DataGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `g` as a SNAP-style edge list, one undirected edge per line
/// (`u v` with `u < v`), preceded by a size comment.
pub fn write_edge_list<W: Write>(g: &DataGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected graph: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Saves `g` to a file (see [`write_edge_list`]).
pub fn save_edge_list<P: AsRef<Path>>(g: &DataGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format_with_comments_and_extra_columns() {
        let text = "# Directed graph\n% konect style\n\n1 2\n2\t3 1234567\n3 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // triangle after symmetrization
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = read_edge_list("1 2\nfoo bar\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = crate::generators::erdos_renyi_gnm(60, 150, 4).unwrap();
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let g2 = read_edge_list(bytes.as_slice()).unwrap();
        // The roundtrip may drop isolated vertices; edges must survive.
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(g2.is_symmetric());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psgl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = crate::generators::erdos_renyi_gnm(30, 60, 2).unwrap();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(load_edge_list("/definitely/not/here.txt"), Err(GraphError::Io(_))));
    }
}
