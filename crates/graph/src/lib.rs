#![warn(missing_docs)]

//! Data-graph substrate for PSgL.
//!
//! The PSgL paper (Shao et al., SIGMOD 2014) evaluates on large unlabeled
//! undirected graphs stored in distributed memory. This crate provides the
//! equivalent single-machine substrate:
//!
//! - [`DataGraph`] — an immutable CSR (compressed sparse row) undirected
//!   graph with `u32` vertex ids and sorted adjacency lists,
//! - [`GraphBuilder`] — applies the paper's preprocessing (add reciprocal
//!   edges, drop self-loops, drop isolated vertices),
//! - [`order`] — the *ordered graph* of Section 3: a total rank by
//!   `(degree, id)` plus the `nb`/`ns` split of each neighborhood
//!   (Property 1),
//! - [`generators`] — Erdős–Rényi, Chung–Lu power-law, and
//!   Barabási–Albert generators standing in for the paper's SNAP/KONECT
//!   datasets (see `DESIGN.md` §3),
//! - [`io`] — SNAP-style edge-list loading/saving,
//! - [`partition`] — the random (hash) vertex partitioner PSgL uses to
//!   spread the data graph over workers,
//! - [`stats`] — degree statistics, including the power-law exponent
//!   estimate used to characterize skew,
//! - [`hash`] — a fast FxHash-style hasher for integer-keyed maps.

pub mod algo;
pub mod binary;
pub mod builder;
pub mod csr;
pub mod error;
pub mod fixtures;
pub mod generators;
pub mod hash;
pub mod io;
pub mod order;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{DataGraph, VertexId};
pub use error::GraphError;
pub use order::OrderedGraph;
pub use partition::HashPartitioner;
pub use stats::DegreeStats;
