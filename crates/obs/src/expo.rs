//! Prometheus text exposition (version 0.0.4) of a registry snapshot,
//! hand-written because the build environment is offline. Covers the
//! format details a scraper depends on: `# HELP` / `# TYPE` lines, help
//! and label-value escaping, and cumulative histogram buckets ending in
//! `+Inf` plus `_sum` / `_count` series.

use crate::metrics::{MetricValue, RegistrySnapshot};

/// Escape a `# HELP` text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double quote, newline.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a snapshot in Prometheus text format. Series that share a name
/// (label variants) are grouped under a single `# HELP` / `# TYPE` pair.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut seen_header: Vec<&str> = Vec::new();
    for m in &snapshot.metrics {
        if !seen_header.contains(&m.name.as_str()) {
            seen_header.push(&m.name);
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
            out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
        }
        match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!("{}{} {}\n", m.name, render_labels(&m.labels, None), v));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.counts[i];
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        render_labels(&m.labels, Some(("le", &bound.to_string()))),
                        cumulative
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    m.name,
                    render_labels(&m.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    m.name,
                    render_labels(&m.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    m.name,
                    render_labels(&m.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// Render a snapshot as a JSON array of metric objects — the body of the
/// `metrics` verb's JSON form. Scalars become `{"name","labels","value"}`;
/// histograms carry `{"bounds","counts","sum","count"}`.
pub fn render_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("[");
    for (i, m) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":{}", crate::json_string(&m.name)));
        if !m.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", crate::json_string(k), crate::json_string(v)));
            }
            out.push('}');
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"))
            }
            MetricValue::Gauge(v) => out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}")),
            MetricValue::Histogram(h) => {
                let bounds: Vec<String> = h.bounds.iter().map(|b| b.to_string()).collect();
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    ",\"type\":\"histogram\",\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}",
                    bounds.join(","),
                    counts.join(","),
                    h.sum,
                    h.count
                ));
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn json_rendering_covers_scalars_and_histograms() {
        let r = Registry::new();
        r.counter("psgl_c", "c").add(3);
        r.histogram("psgl_h", "h", &[10]).observe(4);
        let json = render_json(&r.snapshot());
        assert!(json.contains("{\"name\":\"psgl_c\",\"type\":\"counter\",\"value\":3}"), "{json}");
        assert!(
            json.contains(
                "{\"name\":\"psgl_h\",\"type\":\"histogram\",\"bounds\":[10],\"counts\":[1,0],\"sum\":4,\"count\":1}"
            ),
            "{json}"
        );
    }

    #[test]
    fn counters_and_gauges_get_type_lines_and_values() {
        let r = Registry::new();
        r.counter("psgl_requests_total", "Requests seen.").add(7);
        r.gauge("psgl_queue_depth", "Queued jobs.").set(2);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# HELP psgl_requests_total Requests seen.\n"));
        assert!(text.contains("# TYPE psgl_requests_total counter\n"));
        assert!(
            text.contains("\npsgl_requests_total 7\n")
                || text.starts_with("psgl_requests_total 7\n")
                || text.contains("psgl_requests_total 7\n")
        );
        assert!(text.contains("# TYPE psgl_queue_depth gauge\n"));
        assert!(text.contains("psgl_queue_depth 2\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_with_inf_sum_and_count() {
        let r = Registry::new();
        let h = r.histogram("psgl_latency_ms", "Query latency.", &[10, 100]);
        for v in [5, 50, 500] {
            h.observe(v);
        }
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE psgl_latency_ms histogram\n"));
        assert!(text.contains("psgl_latency_ms_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("psgl_latency_ms_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("psgl_latency_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("psgl_latency_ms_sum 555\n"));
        assert!(text.contains("psgl_latency_ms_count 3\n"));
    }

    #[test]
    fn label_values_and_help_are_escaped() {
        let r = Registry::new();
        r.counter_with_labels(
            "psgl_tenant_queries",
            "Per-tenant\nqueries with back\\slash.",
            &[("tenant", "a\"b\\c\nd")],
        )
        .inc();
        let text = render_prometheus(&r.snapshot());
        assert!(
            text.contains("# HELP psgl_tenant_queries Per-tenant\\nqueries with back\\\\slash.\n"),
            "{text}"
        );
        assert!(text.contains("psgl_tenant_queries{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn label_variants_share_one_header() {
        let r = Registry::new();
        r.counter_with_labels("psgl_t", "t", &[("tenant", "a")]).inc();
        r.counter_with_labels("psgl_t", "t", &[("tenant", "b")]).inc();
        let text = render_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE psgl_t counter").count(), 1, "{text}");
        assert!(text.contains("psgl_t{tenant=\"a\"} 1\n"));
        assert!(text.contains("psgl_t{tenant=\"b\"} 1\n"));
    }

    /// Round-trip: parse the rendered text back and recover every scalar
    /// sample (a scrape-side sanity check that the format is regular).
    #[test]
    fn rendered_text_round_trips_scalar_samples() {
        let r = Registry::new();
        r.counter("psgl_a", "a").add(11);
        r.gauge("psgl_b", "b").set(22);
        let text = render_prometheus(&r.snapshot());
        let mut parsed: Vec<(String, u64)> = Vec::new();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap();
            parsed.push((name.to_string(), value.parse().unwrap()));
        }
        assert!(parsed.contains(&("psgl_a".into(), 11)));
        assert!(parsed.contains(&("psgl_b".into(), 22)));
    }
}
