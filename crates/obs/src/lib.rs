//! Unified observability for the PSgL stack (DESIGN.md §15).
//!
//! Four pieces, all std-only and dependency-free:
//!
//! * [`metrics`] — a typed counter/gauge/histogram registry. Handles are
//!   registered once per name and are lock-free on the hot path (plain
//!   atomic cells; [`metrics::ShardedCounter`] pads per-worker cells and
//!   merges them on read). A [`metrics::Registry::snapshot`] is the single
//!   source for every stats surface.
//! * [`trace`] — cheap structured events. A [`Tracer`] stamps each event
//!   with a sequence number and a timestamp from either a wall clock or a
//!   *logical* clock (`Tracer::seeded`) so deterministic-simulation
//!   fingerprints are unaffected by tracing.
//! * [`recorder`] — a fixed-size ring of recent events (the flight
//!   recorder), dumped to a JSON file on run errors, chaos invariant
//!   failures, or worker death.
//! * [`expo`] + [`slowlog`] — Prometheus text exposition of a registry
//!   snapshot, and a threshold-triggered slow-query log carrying the
//!   per-superstep compute / barrier / spill-stall / exchange timeline.

pub mod expo;
pub mod metrics;
pub mod recorder;
pub mod slowlog;
pub mod trace;

pub use expo::{render_json, render_prometheus};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Registry,
    RegistrySnapshot, ShardedCounter,
};
pub use recorder::FlightRecorder;
pub use slowlog::{SlowQueryEntry, SlowQueryLog, SuperstepTiming};
pub use trace::{TraceEvent, Tracer, Value};

use std::sync::OnceLock;

/// Process-global observability context: one registry + one wall-clock
/// tracer whose ring doubles as the process flight recorder. Components
/// that need isolation (tests, the deterministic simulator) construct
/// their own [`Registry`] / [`Tracer`] instead.
pub struct Obs {
    pub registry: Registry,
    pub tracer: Tracer,
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Capacity of the process-global flight recorder ring.
pub const GLOBAL_RING_CAPACITY: usize = 4096;

pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(|| Obs {
        registry: Registry::new(),
        tracer: Tracer::wall(GLOBAL_RING_CAPACITY),
    })
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    &global().registry
}

/// The process-global wall-clock tracer (its ring is the process flight
/// recorder).
pub fn tracer() -> &'static Tracer {
    &global().tracer
}

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Quote + escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_control_and_quote_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        assert_eq!(json_string("x"), "\"x\"");
    }

    #[test]
    fn global_context_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
        tracer().event("obs_smoke", &[("n", Value::U64(1))]);
        assert!(tracer().events().iter().any(|e| e.name == "obs_smoke"));
    }
}
