//! Flight recorder: a fixed-size ring of recent trace events, dumped to a
//! JSON file when something goes wrong (run error, chaos invariant failure,
//! worker death) so the last moments before the failure are preserved
//! without any steady-state logging cost.

use crate::trace::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serial for dump file names so concurrent dumps in one process never
/// collide.
static DUMP_SERIAL: AtomicU64 = AtomicU64::new(0);

pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, ring: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Render the retained events as a JSON document.
    pub fn to_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 64 + 64);
        out.push_str(&format!(
            "{{\"capacity\":{},\"retained\":{},\"events\":[",
            self.capacity,
            events.len()
        ));
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ev.to_json());
        }
        out.push_str("]}\n");
        out
    }

    /// Write the ring to `path`, creating parent directories.
    pub fn dump_to_file(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Write the ring to `dir/{stem}-{pid}-{serial}.json` and return the
    /// path. `dir` is created if missing.
    pub fn dump_to_dir(&self, dir: &Path, stem: &str) -> std::io::Result<PathBuf> {
        let serial = DUMP_SERIAL.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("{stem}-{}-{serial}.json", std::process::id()));
        self.dump_to_file(&path)?;
        Ok(path)
    }

    /// Dump to `$PSGL_OBS_DIR` if set, else the OS temp dir. Returns the
    /// path on success; I/O errors are swallowed (the recorder must never
    /// turn a failure into a worse failure).
    pub fn dump_on_failure(&self, stem: &str) -> Option<PathBuf> {
        let dir =
            std::env::var_os("PSGL_OBS_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
        self.dump_to_dir(&dir, stem).ok()
    }
}

#[cfg(test)]
mod tests {
    use crate::trace::{Tracer, Value};

    #[test]
    fn ring_retains_only_the_last_capacity_events() {
        let t = Tracer::seeded(3);
        for i in 0..5u64 {
            t.event("tick", &[("i", Value::U64(i))]);
        }
        let evs = t.recorder().events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].field_u64("i"), Some(2));
        assert_eq!(evs[2].field_u64("i"), Some(4));
    }

    #[test]
    fn dump_writes_a_parseable_json_file() {
        let t = Tracer::seeded(8);
        t.event("superstep", &[("step", Value::U64(3))]);
        let dir = std::env::temp_dir().join(format!("psgl-obs-test-{}", std::process::id()));
        let path = t.recorder().dump_to_dir(&dir, "unit").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"superstep\""), "{body}");
        assert!(body.contains("\"retained\":1"), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
