//! Structured trace events.
//!
//! A [`Tracer`] is a cheap cloneable handle; every clone feeds the same
//! flight-recorder ring. Events carry a sequence number and a timestamp
//! from one of two clocks:
//!
//! * **wall** — nanoseconds since the tracer was created; for services and
//!   the coordinator, where operators read real timelines.
//! * **logical** (`Tracer::seeded`) — the timestamp *is* the sequence
//!   number. Two identical seeded runs therefore produce byte-identical
//!   event streams, which the deterministic-simulation suite asserts.
//!
//! Event payloads in deterministic contexts must carry only deterministic
//! values (counters, superstep numbers, byte totals) — never wall
//! durations; that discipline belongs to emitters, and the chaos suite's
//! determinism test enforces it.

use crate::recorder::FlightRecorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A single typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub seq: u64,
    pub ts_nanos: u64,
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_nanos\":{},\"name\":{}",
            self.seq,
            self.ts_nanos,
            crate::json_string(self.name)
        ));
        for (k, v) in &self.fields {
            out.push(',');
            out.push_str(&crate::json_string(k));
            out.push(':');
            match v {
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                Value::Str(s) => out.push_str(&crate::json_string(s)),
            }
        }
        out.push('}');
        out
    }
}

enum Clock {
    Wall(Instant),
    /// Timestamp == sequence number; no wall clock is ever read.
    Logical,
}

struct Inner {
    clock: Clock,
    seq: AtomicU64,
    ring: FlightRecorder,
}

/// Cloneable event emitter; all clones share one ring and one clock.
#[derive(Clone)]
pub struct Tracer(Arc<Inner>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seeded", &self.is_seeded())
            .field("capacity", &self.0.ring.capacity())
            .finish()
    }
}

impl Tracer {
    /// Wall-clock tracer (timestamps are nanos since creation).
    pub fn wall(ring_capacity: usize) -> Self {
        Self(Arc::new(Inner {
            clock: Clock::Wall(Instant::now()),
            seq: AtomicU64::new(0),
            ring: FlightRecorder::new(ring_capacity),
        }))
    }

    /// Deterministic tracer: never reads the wall clock, `ts_nanos == seq`.
    pub fn seeded(ring_capacity: usize) -> Self {
        Self(Arc::new(Inner {
            clock: Clock::Logical,
            seq: AtomicU64::new(0),
            ring: FlightRecorder::new(ring_capacity),
        }))
    }

    pub fn is_seeded(&self) -> bool {
        matches!(self.0.clock, Clock::Logical)
    }

    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let seq = self.0.seq.fetch_add(1, Ordering::Relaxed);
        let ts_nanos = match &self.0.clock {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Logical => seq,
        };
        self.0.ring.push(TraceEvent { seq, ts_nanos, name, fields: fields.to_vec() });
    }

    /// The ring backing this tracer (for dumping on failures).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.0.ring
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.ring.events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_clock_is_wall_free_and_sequential() {
        let t = Tracer::seeded(16);
        t.event("a", &[("x", Value::U64(1))]);
        t.event("b", &[]);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[0].ts_nanos), (0, 0));
        assert_eq!((evs[1].seq, evs[1].ts_nanos), (1, 1));
        assert_eq!(evs[0].field_u64("x"), Some(1));
    }

    #[test]
    fn clones_share_one_ring() {
        let t = Tracer::seeded(16);
        let u = t.clone();
        t.event("from_t", &[]);
        u.event("from_u", &[]);
        let names: Vec<_> = t.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["from_t", "from_u"]);
    }

    #[test]
    fn event_json_escapes_string_fields() {
        let t = Tracer::seeded(4);
        t.event("err", &[("msg", Value::Str("bad \"quote\"\n".into()))]);
        let json = t.events()[0].to_json();
        assert!(json.contains("\\\"quote\\\"\\n"), "{json}");
        assert!(json.starts_with("{\"seq\":0,"));
    }
}
