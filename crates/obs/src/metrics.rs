//! Typed metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`], [`ShardedCounter`]) are
//! registered once per (name, labels) pair and cloned freely; every clone
//! shares the same atomic cell, so the hot path is a single relaxed atomic
//! RMW with no locking. The registry's own lock is taken only at
//! registration and snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Raise the cell to `n` if it is currently lower (high-water marks).
    #[inline]
    pub fn max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge that can move both ways (queue depths, live chunk counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, sorted ascending. An implicit
    /// `+Inf` bucket follows.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last is the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram (values are unit-free `u64`s; the registrant
/// documents the unit in the help text).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds: sorted,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &self.0;
        let idx = inner.bounds.iter().position(|&b| v <= b).unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            counts: inner.buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: inner.sum.load(Ordering::Relaxed),
            count: inner.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`Histogram`]. `counts` are per-bucket (not
/// cumulative) and one longer than `bounds` (the `+Inf` overflow bucket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

/// One cache line per shard so concurrent workers never contend.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Counter striped across per-worker cells, merged on read. Writers pick a
/// shard (worker index) and touch only their own cache line.
#[derive(Clone, Debug)]
pub struct ShardedCounter(Arc<Vec<PaddedCell>>);

impl ShardedCounter {
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self(Arc::new((0..n).map(|_| PaddedCell::default()).collect()))
    }

    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        let cells = &self.0;
        cells[shard % cells.len()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    pub fn shards(&self) -> usize {
        self.0.len()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Sharded(ShardedCounter),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// Name → metric map. Registering the same (name, labels) twice returns the
/// original handle; registering it as a different type panics (that is a
/// programming error, not an operational condition).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with_labels(name, help, &[])
    }

    pub fn counter_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", kind_name(&other)),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, &[], || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", kind_name(&other)),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        match self.register(name, help, &[], || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", kind_name(&other)),
        }
    }

    pub fn sharded_counter(&self, name: &str, help: &str, shards: usize) -> ShardedCounter {
        match self.register(name, help, &[], || Metric::Sharded(ShardedCounter::new(shards))) {
            Metric::Sharded(s) => s,
            other => panic!("metric {name} already registered as {}", kind_name(&other)),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.labels == labels) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            metric: metric.clone(),
        });
        metric
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().unwrap();
        RegistrySnapshot {
            metrics: entries
                .iter()
                .map(|e| MetricSnapshot {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        Metric::Sharded(s) => MetricValue::Counter(s.get()),
                    },
                })
                .collect(),
        }
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
        Metric::Sharded(_) => "sharded counter",
    }
}

/// Point-in-time view of every registered metric, in registration order.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    pub metrics: Vec<MetricSnapshot>,
}

#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

#[derive(Clone, Debug)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

impl RegistrySnapshot {
    /// Scalar value of a metric by name (first label set), if present.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registering_the_same_name_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("psgl_requests", "requests");
        let b = r.counter("psgl_requests", "requests");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().scalar("psgl_requests"), Some(4));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registering_a_name_as_a_different_type_panics() {
        let r = Registry::new();
        let _ = r.counter("psgl_x", "x");
        let _ = r.gauge("psgl_x", "x");
    }

    #[test]
    fn labels_distinguish_series_under_one_name() {
        let r = Registry::new();
        let a = r.counter_with_labels("psgl_tenant_queries", "q", &[("tenant", "a")]);
        let b = r.counter_with_labels("psgl_tenant_queries", "q", &[("tenant", "b")]);
        a.inc();
        b.add(2);
        let snap = r.snapshot();
        let vals: Vec<u64> = snap
            .metrics
            .iter()
            .filter(|m| m.name == "psgl_tenant_queries")
            .map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn gauge_moves_both_ways_and_counter_tracks_maximum() {
        let r = Registry::new();
        let g = r.gauge("psgl_queue_depth", "depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        let peak = r.counter("psgl_peak", "peak");
        peak.max(7);
        peak.max(4);
        assert_eq!(peak.get(), 7);
    }

    #[test]
    fn histogram_buckets_observe_into_the_right_cells() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 99, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.bounds, vec![10, 100, 1000]);
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 99 + 5000);
    }

    #[test]
    fn sharded_counter_merges_per_worker_cells() {
        let c = ShardedCounter::new(4);
        for w in 0..8 {
            c.add(w, (w + 1) as u64);
        }
        assert_eq!(c.get(), (1..=8).sum::<u64>());
        assert_eq!(c.shards(), 4);
    }
}
