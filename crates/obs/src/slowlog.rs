//! Threshold-triggered slow-query log.
//!
//! When a query's wall time crosses the configured threshold, its
//! per-superstep timeline — compute vs barrier-wait vs spill-stall vs
//! exchange time — is recorded in a bounded ring so operators can see
//! *where* a slow query spent its time without re-running it.

use std::collections::VecDeque;
use std::sync::Mutex;

#[derive(Clone, Debug, PartialEq)]
pub struct SuperstepTiming {
    pub superstep: u32,
    pub compute_ms: f64,
    pub barrier_ms: f64,
    pub spill_stall_ms: f64,
    pub exchange_ms: f64,
}

#[derive(Clone, Debug, PartialEq)]
pub struct SlowQueryEntry {
    pub query_id: String,
    pub tenant: String,
    pub pattern: String,
    pub total_ms: f64,
    pub timeline: Vec<SuperstepTiming>,
}

impl SlowQueryEntry {
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"query_id\":{},\"tenant\":{},\"pattern\":{},\"total_ms\":{:.3},\"timeline\":[",
            crate::json_string(&self.query_id),
            crate::json_string(&self.tenant),
            crate::json_string(&self.pattern),
            self.total_ms
        );
        for (i, t) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"superstep\":{},\"compute_ms\":{:.3},\"barrier_ms\":{:.3},\"spill_stall_ms\":{:.3},\"exchange_ms\":{:.3}}}",
                t.superstep, t.compute_ms, t.barrier_ms, t.spill_stall_ms, t.exchange_ms
            ));
        }
        out.push_str("]}");
        out
    }
}

pub struct SlowQueryLog {
    threshold_ms: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    /// Queries slower than `threshold_ms` are retained; the newest
    /// `capacity` entries are kept. A threshold of 0 records every query.
    pub fn new(threshold_ms: u64, capacity: usize) -> Self {
        Self { threshold_ms, capacity: capacity.max(1), ring: Mutex::new(VecDeque::new()) }
    }

    pub fn threshold_ms(&self) -> u64 {
        self.threshold_ms
    }

    /// Record `entry` if it crosses the threshold; returns whether it was
    /// retained.
    pub fn maybe_record(&self, entry: SlowQueryEntry) -> bool {
        if entry.total_ms < self.threshold_ms as f64 {
            return false;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, total_ms: f64) -> SlowQueryEntry {
        SlowQueryEntry {
            query_id: id.into(),
            tenant: "t".into(),
            pattern: "triangle".into(),
            total_ms,
            timeline: vec![SuperstepTiming {
                superstep: 0,
                compute_ms: 1.0,
                barrier_ms: 0.5,
                spill_stall_ms: 0.0,
                exchange_ms: 0.25,
            }],
        }
    }

    #[test]
    fn threshold_filters_and_ring_is_bounded() {
        let log = SlowQueryLog::new(100, 2);
        assert!(!log.maybe_record(entry("fast", 5.0)));
        assert!(log.maybe_record(entry("a", 150.0)));
        assert!(log.maybe_record(entry("b", 200.0)));
        assert!(log.maybe_record(entry("c", 300.0)));
        let ids: Vec<_> = log.entries().iter().map(|e| e.query_id.clone()).collect();
        assert_eq!(ids, vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn entry_json_carries_the_timeline() {
        let json = entry("q1", 150.0).to_json();
        assert!(json.contains("\"query_id\":\"q1\""), "{json}");
        assert!(json.contains("\"barrier_ms\":0.500"), "{json}");
        assert!(json.contains("\"exchange_ms\":0.250"), "{json}");
    }
}
