//! End-to-end cluster tests: a 3-worker loopback cluster must produce
//! results bit-identical to the single-process engine — same instance
//! multiset, same counts, same expansion counters, same per-superstep
//! message curves — for every paper distribution strategy, and a run
//! that loses a worker mid-flight must recover to the same answer.

use std::time::Duration;

use psgl_cluster::control::{GraphSpec, JobSpec};
use psgl_cluster::local::{run_local, LocalClusterConfig};
use psgl_cluster::ClusterOutcome;
use psgl_core::{list_subgraphs, ListingResult};
use psgl_service::parse_pattern_spec;

const WORKERS: usize = 3;
const PARTITIONS: usize = 6;
const GRAPH: &str = "gnm:60:300:7";
const STRATEGIES: [&str; 5] = ["random", "roulette", "wa:1", "wa:0", "wa:0.5"];

fn job(pattern: &str, strategy: &str) -> JobSpec {
    JobSpec {
        graph: GRAPH.into(),
        pattern: pattern.into(),
        strategy: strategy.into(),
        partitions: PARTITIONS,
        seed: 42,
        collect_instances: true,
        checkpoint_interval: 0,
        max_supersteps: 64,
    }
}

/// The centralized single-process run the cluster must reproduce.
fn oracle(job: &JobSpec) -> ListingResult {
    let graph = GraphSpec::parse(&job.graph).unwrap().load().unwrap();
    let pattern = parse_pattern_spec(&job.pattern).unwrap();
    let config = job.config().unwrap();
    list_subgraphs(&graph, &pattern, &config).unwrap()
}

fn assert_matches_oracle(outcome: &ClusterOutcome, oracle: &ListingResult, label: &str) {
    assert_eq!(outcome.instance_count, oracle.instance_count, "{label}: instance count diverged");
    assert_eq!(outcome.instances, oracle.instances, "{label}: instance multiset diverged");
    assert_eq!(outcome.stats.expand, oracle.stats.expand, "{label}: expand counters diverged");
    assert_eq!(outcome.stats.supersteps, oracle.stats.supersteps, "{label}: superstep count");
    assert_eq!(
        outcome.stats.messages_out_per_superstep, oracle.stats.messages_out_per_superstep,
        "{label}: messages-out curve diverged"
    );
    assert_eq!(
        outcome.stats.messages_in_per_superstep, oracle.stats.messages_in_per_superstep,
        "{label}: messages-in curve diverged"
    );
    assert_eq!(
        outcome.stats.per_worker_cost, oracle.stats.per_worker_cost,
        "{label}: per-partition cost diverged"
    );
}

#[test]
fn three_workers_match_oracle_on_triangles_for_every_strategy() {
    for strategy in STRATEGIES {
        let job = job("triangle", strategy);
        let expected = oracle(&job);
        let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.workers_lost, 0);
        assert_matches_oracle(&outcome, &expected, &format!("triangle/{strategy}"));
        assert!(expected.instance_count > 0, "vacuous test: no triangles in fixture");
    }
}

#[test]
fn three_workers_match_oracle_on_four_cliques_for_every_strategy() {
    for strategy in STRATEGIES {
        let job = job("4-clique", strategy);
        let expected = oracle(&job);
        let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
        assert_matches_oracle(&outcome, &expected, &format!("4-clique/{strategy}"));
        assert!(expected.instance_count > 0, "vacuous test: no 4-cliques in fixture");
    }
}

#[test]
fn killed_worker_recovers_to_identical_results() {
    let mut job = job("triangle", "roulette");
    job.checkpoint_interval = 1;
    let expected = oracle(&job);

    let mut cfg = LocalClusterConfig::new(WORKERS, job);
    // Second spawned worker dies entering superstep 1 — the expansion
    // superstep in which the compiled close kernel finishes triangles.
    cfg.die_at = Some((1, 1));
    cfg.heartbeat_timeout = Duration::from_millis(900);
    let tracer = psgl_obs::Tracer::wall(512);
    cfg.tracer = tracer.clone();
    let outcome = run_local(cfg).unwrap();

    assert_eq!(outcome.attempts, 2, "death at superstep 1 must trigger exactly one recovery");
    assert_eq!(outcome.workers_lost, 1);
    assert_matches_oracle(&outcome, &expected, "triangle/roulette after recovery");

    // The recovery path must narrate itself: every membership transition
    // and the abort/reassign/restart sequence shows up as trace events,
    // in causal order.
    let names: Vec<&str> = tracer.events().iter().map(|e| e.name).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "cluster_member_joined").count(),
        WORKERS,
        "one join event per worker: {names:?}"
    );
    let pos = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("missing event {name}: {names:?}"))
    };
    let first_start = pos("cluster_attempt_started");
    let dead = pos("cluster_member_dead");
    let aborted = pos("cluster_attempt_aborted");
    let reassigned = pos("cluster_partitions_reassigned");
    let done = pos("cluster_job_done");
    assert!(first_start < dead, "attempt starts before the death: {names:?}");
    assert!(dead < aborted, "death precedes the abort: {names:?}");
    assert!(aborted < reassigned, "abort precedes reassignment: {names:?}");
    assert!(reassigned < done, "recovery finishes before the job completes: {names:?}");
    assert_eq!(
        names.iter().filter(|n| **n == "cluster_attempt_started").count(),
        2,
        "initial attempt + one recovery: {names:?}"
    );
    let dead_ev = &tracer.events()[dead];
    assert_eq!(dead_ev.field_u64("attempt"), Some(0));
    assert_eq!(dead_ev.field_u64("alive"), Some(WORKERS as u64 - 1));
    let reassigned_ev = &tracer.events()[reassigned];
    assert_eq!(reassigned_ev.field_u64("attempt"), Some(1));
    assert_eq!(reassigned_ev.field_u64("partitions"), Some(PARTITIONS as u64));
}

/// The coordinator's control port doubles as a metrics endpoint: a
/// one-line `{"verb":"metrics"}` request gets the registry back (JSON
/// or Prometheus text) without joining the cluster. With a linger the
/// endpoint stays up after the job finishes, which is how the CI smoke
/// test scrapes the final counters.
#[test]
fn coordinator_serves_metrics_scrape_on_control_port() {
    use psgl_cluster::{run_cluster, run_worker, ClusterConfig, WorkerOptions};
    use psgl_service::wire::{read_json, write_json, MAX_LINE_BYTES};
    use psgl_service::Json;
    use std::io::BufReader;
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut cfg = ClusterConfig::new(WORKERS, job("triangle", "roulette"));
    cfg.linger = Duration::from_secs(2);
    let coord = std::thread::spawn(move || run_cluster(listener, cfg));
    let worker_handles: Vec<_> = (0..WORKERS)
        .map(|_| {
            let target = addr.to_string();
            std::thread::spawn(move || run_worker(&target, WorkerOptions::default()))
        })
        .collect();
    for handle in worker_handles {
        let _ = handle.join();
    }

    // Workers are done; the coordinator is lingering. Scrape JSON.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_json(&mut writer, &Json::obj([("verb", Json::from("metrics"))])).unwrap();
    let reply = read_json(&mut reader, MAX_LINE_BYTES).unwrap().expect("scrape reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let metrics = reply.get("metrics").and_then(Json::as_arr).expect("metrics array");
    let scalar = |name: &str| {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing series {name}"))
    };
    assert!(scalar("psgl_cluster_workers_joined") >= WORKERS as u64);
    assert!(scalar("psgl_cluster_supersteps") > 0);
    assert!(scalar("psgl_cluster_instances") > 0);

    // And again as Prometheus text.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_json(
        &mut writer,
        &Json::obj([("verb", Json::from("metrics")), ("format", Json::from("prometheus"))]),
    )
    .unwrap();
    let reply = read_json(&mut reader, MAX_LINE_BYTES).unwrap().expect("prometheus reply");
    let body = reply.get("body").and_then(Json::as_str).expect("exposition body");
    assert!(body.contains("# TYPE psgl_cluster_supersteps counter"), "{body}");
    assert!(body.contains("psgl_cluster_workers_joined"), "{body}");

    let outcome = coord.join().unwrap().unwrap();
    assert!(outcome.instance_count > 0);
}

#[test]
fn checkpointing_run_without_failure_still_matches_oracle() {
    let mut job = job("triangle", "wa:0.5");
    job.checkpoint_interval = 1;
    let expected = oracle(&job);
    let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
    assert_eq!(outcome.attempts, 1);
    assert_matches_oracle(&outcome, &expected, "triangle/wa:0.5 with checkpoints");
}
