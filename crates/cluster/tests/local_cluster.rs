//! End-to-end cluster tests: a 3-worker loopback cluster must produce
//! results bit-identical to the single-process engine — same instance
//! multiset, same counts, same expansion counters, same per-superstep
//! message curves — for every paper distribution strategy, and a run
//! that loses a worker mid-flight must recover to the same answer.

use std::time::Duration;

use psgl_cluster::control::{GraphSpec, JobSpec};
use psgl_cluster::local::{run_local, LocalClusterConfig};
use psgl_cluster::ClusterOutcome;
use psgl_core::{list_subgraphs, ListingResult};
use psgl_service::parse_pattern_spec;

const WORKERS: usize = 3;
const PARTITIONS: usize = 6;
const GRAPH: &str = "gnm:60:300:7";
const STRATEGIES: [&str; 5] = ["random", "roulette", "wa:1", "wa:0", "wa:0.5"];

fn job(pattern: &str, strategy: &str) -> JobSpec {
    JobSpec {
        graph: GRAPH.into(),
        pattern: pattern.into(),
        strategy: strategy.into(),
        partitions: PARTITIONS,
        seed: 42,
        collect_instances: true,
        checkpoint_interval: 0,
        max_supersteps: 64,
    }
}

/// The centralized single-process run the cluster must reproduce.
fn oracle(job: &JobSpec) -> ListingResult {
    let graph = GraphSpec::parse(&job.graph).unwrap().load().unwrap();
    let pattern = parse_pattern_spec(&job.pattern).unwrap();
    let config = job.config().unwrap();
    list_subgraphs(&graph, &pattern, &config).unwrap()
}

fn assert_matches_oracle(outcome: &ClusterOutcome, oracle: &ListingResult, label: &str) {
    assert_eq!(outcome.instance_count, oracle.instance_count, "{label}: instance count diverged");
    assert_eq!(outcome.instances, oracle.instances, "{label}: instance multiset diverged");
    assert_eq!(outcome.stats.expand, oracle.stats.expand, "{label}: expand counters diverged");
    assert_eq!(outcome.stats.supersteps, oracle.stats.supersteps, "{label}: superstep count");
    assert_eq!(
        outcome.stats.messages_out_per_superstep, oracle.stats.messages_out_per_superstep,
        "{label}: messages-out curve diverged"
    );
    assert_eq!(
        outcome.stats.messages_in_per_superstep, oracle.stats.messages_in_per_superstep,
        "{label}: messages-in curve diverged"
    );
    assert_eq!(
        outcome.stats.per_worker_cost, oracle.stats.per_worker_cost,
        "{label}: per-partition cost diverged"
    );
}

#[test]
fn three_workers_match_oracle_on_triangles_for_every_strategy() {
    for strategy in STRATEGIES {
        let job = job("triangle", strategy);
        let expected = oracle(&job);
        let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.workers_lost, 0);
        assert_matches_oracle(&outcome, &expected, &format!("triangle/{strategy}"));
        assert!(expected.instance_count > 0, "vacuous test: no triangles in fixture");
    }
}

#[test]
fn three_workers_match_oracle_on_four_cliques_for_every_strategy() {
    for strategy in STRATEGIES {
        let job = job("4-clique", strategy);
        let expected = oracle(&job);
        let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
        assert_matches_oracle(&outcome, &expected, &format!("4-clique/{strategy}"));
        assert!(expected.instance_count > 0, "vacuous test: no 4-cliques in fixture");
    }
}

#[test]
fn killed_worker_recovers_to_identical_results() {
    let mut job = job("triangle", "roulette");
    job.checkpoint_interval = 1;
    let expected = oracle(&job);

    let mut cfg = LocalClusterConfig::new(WORKERS, job);
    // Second spawned worker dies entering superstep 1 — the expansion
    // superstep in which the compiled close kernel finishes triangles.
    cfg.die_at = Some((1, 1));
    cfg.heartbeat_timeout = Duration::from_millis(900);
    let outcome = run_local(cfg).unwrap();

    assert_eq!(outcome.attempts, 2, "death at superstep 1 must trigger exactly one recovery");
    assert_eq!(outcome.workers_lost, 1);
    assert_matches_oracle(&outcome, &expected, "triangle/roulette after recovery");
}

#[test]
fn checkpointing_run_without_failure_still_matches_oracle() {
    let mut job = job("triangle", "wa:0.5");
    job.checkpoint_interval = 1;
    let expected = oracle(&job);
    let outcome = run_local(LocalClusterConfig::new(WORKERS, job)).unwrap();
    assert_eq!(outcome.attempts, 1);
    assert_matches_oracle(&outcome, &expected, "triangle/wa:0.5 with checkpoints");
}
