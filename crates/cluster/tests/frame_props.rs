//! Property tests for the binary frame codec: arbitrary frames survive
//! an encode/decode round trip (including zero-length and
//! chunk-capacity payloads), and any corruption or truncation is
//! rejected with a typed error — never a wrong frame, never a panic.

use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy as _};
use psgl_bsp::DEFAULT_CHUNK_CAPACITY;
use psgl_cluster::frame::{decode, encode, read_frame, Frame, FrameError, FrameKind};
use psgl_core::gpsi::{Gpsi, MAX_GPSI_VERTICES};
use psgl_graph::VertexId;

/// Arbitrary valid Gpsi raw parts: `expanding` in range and the
/// black ⊆ mapped invariant the decoder enforces.
fn gpsi_strategy() -> impl proptest::Strategy<Value = Gpsi> {
    (
        vec(proptest::any::<u32>(), MAX_GPSI_VERTICES),
        proptest::any::<u16>(),
        proptest::any::<u16>(),
        // u128 via two u64 halves (the compat shim has no u128 source).
        (proptest::any::<u64>(), proptest::any::<u64>()),
        0u8..MAX_GPSI_VERTICES as u8,
    )
        .prop_map(|(mapping, black, mapped, (vhi, vlo), expanding)| {
            let mut arr = [0 as VertexId; MAX_GPSI_VERTICES];
            arr.copy_from_slice(&mapping);
            let verified = (u128::from(vhi) << 64) | u128::from(vlo);
            // Force the invariant instead of filtering: black ⊆ mapped.
            Gpsi::from_raw_parts(arr, black & mapped, mapped, verified, expanding)
        })
}

fn frame_strategy() -> impl proptest::Strategy<Value = Frame<Gpsi>> {
    (
        proptest::any::<u32>(),
        proptest::any::<u32>(),
        proptest::any::<u32>(),
        // Zero-length through a full engine chunk (the largest payload
        // the exchange ever encodes into one frame).
        vec((proptest::any::<u32>(), gpsi_strategy()), 0..DEFAULT_CHUNK_CAPACITY + 1),
    )
        .prop_map(|(superstep, src, dst, tuples)| Frame {
            kind: FrameKind::Data,
            superstep,
            src,
            dst,
            tuples,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity, the reported wire size is exact,
    /// and the streaming reader agrees with the slice decoder.
    #[test]
    fn roundtrip_is_identity(frame in frame_strategy()) {
        let bytes = encode(&frame);
        let (back, consumed) = decode::<Gpsi>(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back.kind, frame.kind);
        prop_assert_eq!(back.superstep, frame.superstep);
        prop_assert_eq!(back.src, frame.src);
        prop_assert_eq!(back.dst, frame.dst);
        prop_assert_eq!(&back.tuples, &frame.tuples);

        let mut cursor = std::io::Cursor::new(bytes.as_slice());
        let (streamed, size) = read_frame::<Gpsi>(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(size as usize, bytes.len());
        prop_assert_eq!(&streamed.tuples, &frame.tuples);
    }

    /// Flipping any single byte of the body is caught — almost always by
    /// the checksum, never by a successful decode of different content.
    #[test]
    fn corruption_never_decodes_to_a_different_frame(
        frame in frame_strategy(),
        flip_seed in proptest::any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode(&frame);
        // Corrupt a body byte (past the 4-byte length prefix, which has
        // its own dedicated failure modes tested below).
        let body_len = bytes.len() - 4;
        let pos = 4 + (flip_seed as usize % body_len);
        bytes[pos] ^= 1 << bit;
        match decode::<Gpsi>(&bytes) {
            Err(FrameError::ChecksumMismatch)
            | Err(FrameError::BadMagic)
            | Err(FrameError::BadKind(_))
            | Err(FrameError::BadPayload(_))
            | Err(FrameError::Truncated)
            | Err(FrameError::Oversized { .. }) => {}
            Ok((back, _)) => {
                // A flipped bit in the checksum trailer of an otherwise
                // intact frame cannot happen (the checksum would then
                // mismatch), so any Ok must be impossible.
                prop_assert!(false, "corrupt frame decoded: {:?}", back.tuples.len());
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Every strict prefix of an encoded frame is `Truncated` for the
    /// slice decoder, and the streaming reader reports a typed error
    /// (truncation mid-frame) rather than a phantom frame.
    #[test]
    fn every_truncation_is_rejected(frame in frame_strategy(), cut_seed in proptest::any::<u64>()) {
        let bytes = encode(&frame);
        let cut = cut_seed as usize % bytes.len(); // strict prefix
        match decode::<Gpsi>(&bytes[..cut]) {
            Err(FrameError::Truncated) => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {other:?}"),
        }
        if cut > 0 {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            match read_frame::<Gpsi>(&mut cursor) {
                Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {}
                Ok(None) if cut < 4 => {
                    // The streaming reader treats a clean EOF at a frame
                    // boundary as end-of-stream, but only with 0 bytes
                    // available; any partial prefix must error.
                    prop_assert!(false, "partial length prefix read as EOF");
                }
                other => prop_assert!(false, "streamed prefix of {cut} bytes gave {other:?}"),
            }
        }
    }
}
