//! The coordinator: membership, barrier sequencing, and recovery.
//!
//! One coordinator process drives `N` worker processes through the BSP
//! superstep loop. Its event loop is single-threaded; per-connection
//! reader threads feed it a channel of [`Event`]s. The coordinator
//! never touches graph data — it merges per-partition metrics into the
//! global superstep record, broadcasts the global in-flight count that
//! keeps every worker's halt/budget decisions identical, stores
//! checkpoint shards, and orchestrates rollback when a worker dies.
//!
//! # Barrier protocol
//!
//! Workers compute superstep `s`, ship their remote outboxes over the
//! data plane, then send [`WorkerMsg::Barrier`] with their local
//! per-partition metrics. When every alive worker has reported `s`, the
//! coordinator assembles the `K`-wide global metric row (one slot per
//! partition, exactly as the single-process engine records it), sums
//! `messages_out` into the global in-flight count, and broadcasts
//! [`CoordMsg::Proceed`]. A `checkpoint` flag on the proceed tells
//! workers to capture their incoming frontier before computing `s + 1`.
//!
//! # Recovery
//!
//! A worker is declared dead on heartbeat lapse, control-connection
//! EOF, or a [`WorkerMsg::Error`] report. The coordinator then aborts
//! the current attempt on the survivors (the abort names the *old*
//! attempt id; stale messages from it are ignored thereafter), bumps
//! the attempt counter, truncates the global metric log back to the
//! newest complete checkpoint, reassigns the dead worker's partitions
//! round-robin over the survivors, and restarts from the checkpoint
//! shards. Execution is deterministic, so the re-run reproduces the
//! exact frontier the failed attempt would have carried.

use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psgl_bsp::{EngineMetrics, NetSuperstepMetrics, SuperstepMetrics, WorkerSuperstepMetrics};
use psgl_core::{assemble_run_stats, ExpandStats, RunStats};
use psgl_graph::VertexId;
use psgl_obs::Value as TraceValue;
use psgl_service::wire::{read_json, write_json, MAX_LINE_BYTES};
use psgl_service::Json;

use crate::control::{CoordMsg, JobSpec, WorkerMsg};
use crate::membership::Membership;

/// How long the event loop sleeps waiting for worker traffic before
/// re-checking heartbeats and the deadline.
const EVENT_POLL: Duration = Duration::from_millis(20);

/// Coordinator-side configuration for one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Worker processes to wait for before starting.
    pub workers: usize,
    /// The job to execute.
    pub job: JobSpec,
    /// Silence threshold after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// How long to wait for all `workers` to join.
    pub join_timeout: Duration,
    /// Optional wall-clock budget for the whole run (all attempts).
    pub deadline: Option<Duration>,
    /// How long the coordinator keeps its listener open after the run
    /// finishes, so `metrics` scrapes can still reach it (CI smoke tests,
    /// operators collecting a final snapshot). Zero tears down at once.
    pub linger: Duration,
    /// Trace sink for membership and recovery events. Defaults to the
    /// process tracer; tests pass their own to assert event sequences.
    pub tracer: psgl_obs::Tracer,
}

impl ClusterConfig {
    /// A config with conventional timeouts: 3 s heartbeat, 30 s join,
    /// no deadline.
    pub fn new(workers: usize, job: JobSpec) -> ClusterConfig {
        ClusterConfig {
            workers,
            job,
            heartbeat_timeout: Duration::from_secs(3),
            join_timeout: Duration::from_secs(30),
            deadline: None,
            linger: Duration::ZERO,
            tracer: psgl_obs::tracer().clone(),
        }
    }
}

/// Coordinator counters, registered once in the process-global registry so
/// the `metrics` scrape (JSON or Prometheus) sees them.
struct CoordCounters {
    workers_joined: psgl_obs::Counter,
    workers_lost: psgl_obs::Counter,
    attempts: psgl_obs::Counter,
    supersteps: psgl_obs::Counter,
    instances: psgl_obs::Counter,
    messages: psgl_obs::Counter,
}

impl CoordCounters {
    fn new() -> CoordCounters {
        let r = psgl_obs::registry();
        CoordCounters {
            workers_joined: r
                .counter("psgl_cluster_workers_joined", "Worker processes that joined."),
            workers_lost: r
                .counter("psgl_cluster_workers_lost", "Workers declared dead and recovered from."),
            attempts: r.counter("psgl_cluster_attempts", "Execution attempts started."),
            supersteps: r
                .counter("psgl_cluster_supersteps", "Global superstep barriers completed."),
            instances: r.counter("psgl_cluster_instances", "Embeddings found by finished jobs."),
            messages: r.counter("psgl_cluster_messages", "Messages exchanged by finished jobs."),
        }
    }
}

/// What a completed cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Total embeddings found (sum of worker `ExpandStats::results`).
    pub instance_count: u64,
    /// Sorted instance tuples when the job collected them.
    pub instances: Option<Vec<Vec<VertexId>>>,
    /// Aggregated run statistics (global superstep metrics, merged
    /// network counters, merged expansion counters).
    pub stats: RunStats,
    /// Execution attempts (1 = no failures).
    pub attempts: u32,
    /// Workers that died and were recovered from.
    pub workers_lost: usize,
}

/// Why a cluster run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket-level failure on the coordinator itself.
    Io(String),
    /// `job.partitions` < worker count: some worker would host nothing.
    TooFewPartitions {
        /// Logical partitions in the job.
        partitions: usize,
        /// Worker processes configured.
        workers: usize,
    },
    /// Not all workers joined within the join timeout.
    JoinTimeout {
        /// Workers that did join.
        joined: usize,
        /// Workers expected.
        expected: usize,
    },
    /// Every worker died; nothing left to recover onto.
    AllWorkersLost {
        /// Last error a worker reported, if any did.
        last_error: Option<String>,
    },
    /// The run was cancelled (deadline).
    Cancelled {
        /// `CancelReason::as_str` form.
        reason: String,
    },
    /// A worker violated the control protocol.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(m) => write!(f, "cluster i/o error: {m}"),
            ClusterError::TooFewPartitions { partitions, workers } => write!(
                f,
                "{partitions} partitions cannot cover {workers} workers; need partitions >= workers"
            ),
            ClusterError::JoinTimeout { joined, expected } => {
                write!(f, "only {joined}/{expected} workers joined before the timeout")
            }
            ClusterError::AllWorkersLost { last_error } => match last_error {
                Some(e) => write!(f, "all workers lost (last error: {e})"),
                None => write!(f, "all workers lost"),
            },
            ClusterError::Cancelled { reason } => write!(f, "cluster run cancelled: {reason}"),
            ClusterError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// What a connection reader thread feeds the event loop.
enum Event {
    Joined { proc: u32, writer: TcpStream, data_addr: String },
    Msg { proc: u32, msg: WorkerMsg },
    Gone { proc: u32 },
}

/// Coordinator-side view of one worker process.
struct WorkerSlot {
    writer: TcpStream,
    data_addr: String,
    alive: bool,
}

impl WorkerSlot {
    fn send(&self, msg: &CoordMsg) {
        // Send failures surface as the worker's own death (its pings
        // stop flowing over the same broken socket), so they are not
        // handled here.
        let mut w = &self.writer;
        let _ = write_json(&mut w, &msg.to_json());
    }
}

/// The pieces of a worker's `done` report the aggregate needs.
struct DoneParts {
    expand: ExpandStats,
    instances: Option<Vec<Vec<VertexId>>>,
    net: Vec<(u32, NetSuperstepMetrics)>,
    pool_exhausted: u64,
    chunks_outstanding: i64,
}

/// Runs a cluster job to completion over an already-bound listener.
///
/// Blocks until the job finishes, fails, or the deadline expires. On
/// every exit path the coordinator sends [`CoordMsg::Stop`] to all
/// workers and shuts both directions of every control socket down, so
/// worker processes (and [`crate::local`] harness threads) always
/// unblock.
pub fn run_cluster(
    listener: TcpListener,
    cfg: ClusterConfig,
) -> Result<ClusterOutcome, ClusterError> {
    if cfg.job.partitions < cfg.workers {
        return Err(ClusterError::TooFewPartitions {
            partitions: cfg.job.partitions,
            workers: cfg.workers,
        });
    }
    let addr = listener.local_addr().map_err(|e| ClusterError::Io(e.to_string()))?;
    let (tx, rx) = mpsc::channel::<Event>();
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, tx, shutdown))
    };

    let mut slots: BTreeMap<u32, WorkerSlot> = BTreeMap::new();
    let result = drive(&rx, &cfg, &mut slots);

    // Teardown, unconditionally: tell everyone to stop, then sever the
    // sockets so blocked reader threads on both sides wake up. With a
    // linger the listener stays up in between, so a scraper can still
    // collect the final counters of the finished run.
    for slot in slots.values() {
        slot.send(&CoordMsg::Stop);
        let _ = slot.writer.shutdown(Shutdown::Both);
    }
    if !cfg.linger.is_zero() {
        std::thread::sleep(cfg.linger);
    }
    shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr); // wake the accept loop
    let _ = accept_handle.join();
    result
}

fn accept_loop(listener: TcpListener, tx: Sender<Event>, shutdown: Arc<AtomicBool>) {
    let mut next_proc: u32 = 0;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let proc = next_proc;
        next_proc += 1;
        let tx = tx.clone();
        std::thread::spawn(move || worker_reader(stream, proc, tx));
    }
}

/// Reads one worker's control connection. The first message must be a
/// `join` — unless it is a `metrics` scrape, which gets one reply line
/// (the coordinator's registry, JSON or Prometheus text) and hangs up.
fn worker_reader(stream: TcpStream, proc: u32, tx: Sender<Event>) {
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    match read_json(&mut reader, MAX_LINE_BYTES) {
        Ok(Some(json)) => {
            if json.get("verb").and_then(Json::as_str) == Some("metrics") {
                serve_metrics_scrape(&writer, &json);
                let _ = writer.shutdown(Shutdown::Both);
                return;
            }
            match WorkerMsg::from_json(&json) {
                Ok(WorkerMsg::Join { data_addr }) => {
                    if tx.send(Event::Joined { proc, writer, data_addr }).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
        _ => return,
    }
    loop {
        match read_json(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(json)) => {
                let Ok(msg) = WorkerMsg::from_json(&json) else {
                    let _ = tx.send(Event::Gone { proc });
                    return;
                };
                if tx.send(Event::Msg { proc, msg }).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Gone { proc });
                return;
            }
        }
    }
}

/// Answers a one-shot `metrics` scrape on the control port with the
/// process-global registry, as structured JSON or (with
/// `"format":"prometheus"`) as exposition text in a `body` field.
fn serve_metrics_scrape(writer: &TcpStream, req: &Json) {
    let snapshot = psgl_obs::registry().snapshot();
    let mut w = writer;
    let reply = if req.get("format").and_then(Json::as_str) == Some("prometheus") {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("format", Json::from("prometheus")),
            ("body", Json::from(psgl_obs::render_prometheus(&snapshot))),
        ])
    } else {
        let metrics =
            Json::parse(&psgl_obs::render_json(&snapshot)).unwrap_or(Json::Arr(Vec::new()));
        Json::obj([("ok", Json::Bool(true)), ("metrics", metrics)])
    };
    let _ = write_json(&mut w, &reply);
}

/// The event loop proper: join phase, then attempts until done.
fn drive(
    rx: &Receiver<Event>,
    cfg: &ClusterConfig,
    slots: &mut BTreeMap<u32, WorkerSlot>,
) -> Result<ClusterOutcome, ClusterError> {
    let mut membership = Membership::new(cfg.heartbeat_timeout);
    let counters = CoordCounters::new();
    let tracer = &cfg.tracer;

    // Join phase: wait for `workers` processes to register.
    let join_deadline = Instant::now() + cfg.join_timeout;
    while slots.len() < cfg.workers {
        let wait = join_deadline.saturating_duration_since(Instant::now()).min(EVENT_POLL);
        match rx.recv_timeout(wait) {
            Ok(Event::Joined { proc, writer, data_addr }) => {
                let slot = WorkerSlot { writer, data_addr, alive: true };
                slot.send(&CoordMsg::Welcome { proc });
                membership.touch(proc, Instant::now());
                slots.insert(proc, slot);
                counters.workers_joined.inc();
                tracer.event(
                    "cluster_member_joined",
                    &[
                        ("proc", TraceValue::U64(proc as u64)),
                        ("joined", TraceValue::U64(slots.len() as u64)),
                        ("expected", TraceValue::U64(cfg.workers as u64)),
                    ],
                );
            }
            Ok(Event::Msg { proc, .. }) => membership.touch(proc, Instant::now()),
            Ok(Event::Gone { proc }) => {
                slots.remove(&proc);
                membership.remove(proc);
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= join_deadline {
                    return Err(ClusterError::JoinTimeout {
                        joined: slots.len(),
                        expected: cfg.workers,
                    });
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ClusterError::Io("event channel closed".into()))
            }
        }
    }

    let started = Instant::now();
    let deadline = cfg.deadline.map(|d| started + d);
    let k = cfg.job.partitions;
    let mut attempt: u32 = 0;
    let mut workers_lost = 0usize;
    let mut last_error: Option<String> = None;
    // Global per-superstep metrics, exactly as a single-process run
    // would record them (K worker slots, one per partition).
    let mut global_steps: Vec<SuperstepMetrics> = Vec::new();
    // Checkpoint store: superstep -> partition -> shard bytes. A
    // checkpoint is usable once all K partitions are present. Shards
    // survive attempt bumps: execution is deterministic, so a stale
    // attempt's shard for (s, p) is byte-identical to a fresh one.
    let mut shards: HashMap<u32, HashMap<u32, Vec<u8>>> = HashMap::new();
    let mut latest_complete: Option<u32> = None;
    // Barrier accumulation for the current attempt:
    // superstep -> proc -> (partitions, metrics).
    type BarrierRow = (Vec<u32>, Vec<WorkerSuperstepMetrics>);
    let mut barriers: HashMap<u32, HashMap<u32, BarrierRow>> = HashMap::new();
    let mut dones: BTreeMap<u32, DoneParts> = BTreeMap::new();

    start_attempt(slots, cfg, attempt, 0, &shards, &counters);

    loop {
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            tracer.event(
                "cluster_attempt_aborted",
                &[
                    ("attempt", TraceValue::U64(attempt as u64)),
                    ("reason", TraceValue::Str("deadline".into())),
                ],
            );
            broadcast_alive(slots, &CoordMsg::Abort { attempt, reason: "deadline".into() });
            return Err(ClusterError::Cancelled { reason: "deadline".into() });
        }
        // Deaths observed this iteration; heartbeat expiries join below,
        // *after* the recv, so the early `continue` (message from an
        // already-dead proc) never drops a collected expiry.
        let mut dead: Vec<u32> = Vec::new();

        match rx.recv_timeout(EVENT_POLL) {
            Ok(Event::Msg { proc, msg }) => {
                if slots.get(&proc).is_none_or(|s| !s.alive) {
                    continue;
                }
                membership.touch(proc, Instant::now());
                match msg {
                    WorkerMsg::Ping | WorkerMsg::Join { .. } => {}
                    WorkerMsg::Barrier { attempt: a, superstep, partitions, metrics }
                        if a == attempt =>
                    {
                        barriers.entry(superstep).or_default().insert(proc, (partitions, metrics));
                        let alive = alive_count(slots);
                        if barriers.get(&superstep).map(HashMap::len) == Some(alive) {
                            let rows = barriers.remove(&superstep).unwrap_or_default();
                            if superstep as usize != global_steps.len() {
                                return Err(ClusterError::Protocol(format!(
                                    "barrier for superstep {superstep} but {} recorded",
                                    global_steps.len()
                                )));
                            }
                            let mut workers = vec![WorkerSuperstepMetrics::default(); k];
                            for (_, (parts, ms)) in rows {
                                for (p, m) in parts.into_iter().zip(ms) {
                                    workers[p as usize] = m;
                                }
                            }
                            let in_flight: u64 = workers.iter().map(|w| w.messages_out).sum();
                            global_steps.push(SuperstepMetrics {
                                workers,
                                net: NetSuperstepMetrics::default(),
                                spill_stall_nanos: 0,
                            });
                            counters.supersteps.inc();
                            let interval = cfg.job.checkpoint_interval;
                            let checkpoint =
                                interval > 0 && in_flight > 0 && (superstep + 1) % interval == 0;
                            broadcast_alive(
                                slots,
                                &CoordMsg::Proceed { attempt, superstep, in_flight, checkpoint },
                            );
                        }
                    }
                    WorkerMsg::Barrier { .. } => {} // stale attempt
                    WorkerMsg::Shard { attempt: a, superstep, partition, bytes }
                        if a == attempt =>
                    {
                        let entry = shards.entry(superstep).or_default();
                        entry.insert(partition, bytes);
                        if entry.len() == k {
                            latest_complete =
                                Some(latest_complete.map_or(superstep, |c| c.max(superstep)));
                        }
                    }
                    WorkerMsg::Shard { .. } => {} // stale attempt
                    WorkerMsg::Done {
                        attempt: a,
                        expand,
                        instances,
                        supersteps,
                        net,
                        pool_exhausted,
                        chunks_outstanding,
                    } if a == attempt => {
                        // After a recovery the worker's own metrics span
                        // only the supersteps of the final attempt, so
                        // the global log is an upper bound, not an
                        // equality.
                        if supersteps as usize > global_steps.len() {
                            return Err(ClusterError::Protocol(format!(
                                "worker {proc} ran {supersteps} supersteps, coordinator saw {}",
                                global_steps.len()
                            )));
                        }
                        dones.insert(
                            proc,
                            DoneParts {
                                expand,
                                instances,
                                net,
                                pool_exhausted,
                                chunks_outstanding,
                            },
                        );
                        if dones.len() == alive_count(slots) {
                            let dones = std::mem::take(&mut dones);
                            return Ok(aggregate(
                                cfg,
                                global_steps,
                                dones,
                                started,
                                attempt,
                                workers_lost,
                                &counters,
                            ));
                        }
                    }
                    WorkerMsg::Done { .. } => {} // stale attempt
                    WorkerMsg::Error { message } => {
                        tracer.event(
                            "cluster_worker_error",
                            &[
                                ("proc", TraceValue::U64(proc as u64)),
                                ("attempt", TraceValue::U64(attempt as u64)),
                                ("message", TraceValue::Str(message.clone())),
                            ],
                        );
                        last_error = Some(message);
                        dead.push(proc);
                    }
                }
            }
            Ok(Event::Gone { proc }) => {
                if slots.get(&proc).is_some_and(|s| s.alive) {
                    dead.push(proc);
                }
            }
            // A process connecting after the cluster is full is not a
            // member; never welcomed, it will read EOF at teardown.
            Ok(Event::Joined { .. }) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ClusterError::Io("event channel closed".into()))
            }
        }

        let expired: Vec<u32> = membership
            .expired(Instant::now())
            .into_iter()
            .filter(|p| slots.get(p).is_some_and(|s| s.alive))
            .collect();
        for &proc in &expired {
            // Heartbeat lapse: the socket is still up but the worker has
            // been silent past the timeout. Distinct from `Gone` so the
            // operator can tell a hung worker from a dead connection.
            tracer.event(
                "cluster_member_suspected",
                &[
                    ("proc", TraceValue::U64(proc as u64)),
                    ("attempt", TraceValue::U64(attempt as u64)),
                    ("timeout_ms", TraceValue::U64(cfg.heartbeat_timeout.as_millis() as u64)),
                ],
            );
        }
        dead.extend(expired);
        if !dead.is_empty() {
            dead.sort_unstable();
            dead.dedup();
            for proc in &dead {
                if let Some(slot) = slots.get_mut(proc) {
                    if !slot.alive {
                        continue;
                    }
                    slot.alive = false;
                    workers_lost += 1;
                    membership.remove(*proc);
                    let _ = slot.writer.shutdown(Shutdown::Both);
                    counters.workers_lost.inc();
                    tracer.event(
                        "cluster_member_dead",
                        &[
                            ("proc", TraceValue::U64(*proc as u64)),
                            ("attempt", TraceValue::U64(attempt as u64)),
                            ("alive", TraceValue::U64(alive_count(slots) as u64)),
                        ],
                    );
                }
            }
            // Snapshot the ring for post-mortems: the dump carries the
            // join / suspected / dead sequence that led here.
            let _ = tracer.recorder().dump_on_failure("cluster-worker-death");
            if alive_count(slots) == 0 {
                return Err(ClusterError::AllWorkersLost { last_error });
            }
            // Recovery: cancel the wounded attempt on the survivors,
            // roll back to the newest complete checkpoint, reassign.
            tracer.event(
                "cluster_attempt_aborted",
                &[
                    ("attempt", TraceValue::U64(attempt as u64)),
                    ("reason", TraceValue::Str("disconnected".into())),
                ],
            );
            broadcast_alive(slots, &CoordMsg::Abort { attempt, reason: "disconnected".into() });
            attempt += 1;
            let resume_superstep = latest_complete.unwrap_or(0);
            global_steps.truncate(resume_superstep as usize);
            barriers.clear();
            dones.clear();
            start_attempt(slots, cfg, attempt, resume_superstep, &shards, &counters);
        }
    }
}

fn alive_count(slots: &BTreeMap<u32, WorkerSlot>) -> usize {
    slots.values().filter(|s| s.alive).count()
}

fn broadcast_alive(slots: &BTreeMap<u32, WorkerSlot>, msg: &CoordMsg) {
    for slot in slots.values().filter(|s| s.alive) {
        slot.send(msg);
    }
}

/// Assigns partitions round-robin over the alive workers and sends each
/// its `start` order. Round-robin over `partition % alive` guarantees
/// every worker hosts at least one partition whenever `K >= alive`.
fn start_attempt(
    slots: &BTreeMap<u32, WorkerSlot>,
    cfg: &ClusterConfig,
    attempt: u32,
    resume_superstep: u32,
    shards: &HashMap<u32, HashMap<u32, Vec<u8>>>,
    counters: &CoordCounters,
) {
    let alive: Vec<u32> = slots.iter().filter(|(_, s)| s.alive).map(|(&p, _)| p).collect();
    let k = cfg.job.partitions;
    let owners: Vec<u32> = (0..k).map(|p| alive[p % alive.len()]).collect();
    counters.attempts.inc();
    if attempt > 0 {
        cfg.tracer.event(
            "cluster_partitions_reassigned",
            &[
                ("attempt", TraceValue::U64(attempt as u64)),
                ("alive", TraceValue::U64(alive.len() as u64)),
                ("partitions", TraceValue::U64(k as u64)),
                ("resume_superstep", TraceValue::U64(resume_superstep as u64)),
            ],
        );
    }
    cfg.tracer.event(
        "cluster_attempt_started",
        &[
            ("attempt", TraceValue::U64(attempt as u64)),
            ("alive", TraceValue::U64(alive.len() as u64)),
            ("resume_superstep", TraceValue::U64(resume_superstep as u64)),
        ],
    );
    let peers: Vec<(u32, String)> =
        alive.iter().map(|p| (*p, slots[p].data_addr.clone())).collect();
    let resume_set = if resume_superstep > 0 { shards.get(&resume_superstep) } else { None };
    for &w in &alive {
        let partitions: Vec<u32> = (0..k as u32).filter(|&p| owners[p as usize] == w).collect();
        let resume: Vec<Vec<u8>> = match resume_set {
            Some(set) => partitions.iter().filter_map(|p| set.get(p).cloned()).collect(),
            None => Vec::new(),
        };
        slots[&w].send(&CoordMsg::Start {
            attempt,
            job: cfg.job.clone(),
            partitions,
            owners: owners.clone(),
            peers: peers.clone(),
            resume,
        });
    }
}

/// Merges the per-worker `done` reports into the final outcome.
fn aggregate(
    cfg: &ClusterConfig,
    mut steps: Vec<SuperstepMetrics>,
    dones: BTreeMap<u32, DoneParts>,
    started: Instant,
    attempt: u32,
    workers_lost: usize,
    counters: &CoordCounters,
) -> ClusterOutcome {
    let mut expand = ExpandStats::default();
    let mut instances: Option<Vec<Vec<VertexId>>> =
        if cfg.job.collect_instances { Some(Vec::new()) } else { None };
    let mut pool_exhausted = 0u64;
    let mut chunks_outstanding = 0i64;
    for parts in dones.into_values() {
        expand.merge(&parts.expand);
        if let (Some(all), Some(mine)) = (instances.as_mut(), parts.instances) {
            all.extend(mine);
        }
        // Per-superstep network counters are merged into the global
        // record by superstep index. After a recovery the resumed-over
        // prefix keeps zero network counters: the attempt that paid for
        // those frames never reported (its `done` was never sent).
        for (s, net) in parts.net {
            if let Some(step) = steps.get_mut(s as usize) {
                step.net.merge(&net);
            }
        }
        pool_exhausted += parts.pool_exhausted;
        chunks_outstanding += parts.chunks_outstanding;
    }
    if let Some(all) = instances.as_mut() {
        all.sort_unstable();
    }
    counters.instances.add(expand.results);
    let messages: u64 = steps.iter().flat_map(|s| s.workers.iter()).map(|w| w.messages_out).sum();
    counters.messages.add(messages);
    cfg.tracer.event(
        "cluster_job_done",
        &[
            ("attempts", TraceValue::U64(attempt as u64 + 1)),
            ("workers_lost", TraceValue::U64(workers_lost as u64)),
            ("instances", TraceValue::U64(expand.results)),
            ("supersteps", TraceValue::U64(steps.len() as u64)),
        ],
    );
    let metrics = EngineMetrics {
        supersteps: steps,
        wall_time: started.elapsed(),
        pool_exhausted,
        chunks_outstanding,
        ..EngineMetrics::default()
    };
    let stats = assemble_run_stats(expand, &metrics);
    ClusterOutcome {
        instance_count: expand.results,
        instances,
        stats,
        attempts: attempt + 1,
        workers_lost,
    }
}
