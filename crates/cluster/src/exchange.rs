//! The distributed exchange: ships remote outboxes over TCP, waits out
//! the coordinator barrier, and assembles the next superstep's inboxes
//! in the global source order the engine's determinism contract
//! requires.
//!
//! ## Data plane
//!
//! Each worker process listens on a data address; per attempt, every
//! pair of processes is connected by two TCP streams (one per
//! direction). A connection opens with a [`FrameKind::Hello`] naming
//! the sending proc and the attempt; after that it carries
//! [`FrameKind::Data`] frames (one per chunk, batched into a single
//! buffered write per peer per superstep) and one
//! [`FrameKind::EndOfStep`] per superstep. TCP's per-connection
//! ordering makes the end-of-step marker a valid completion signal, and
//! keeps each (source partition → destination partition) route's tuples
//! in send order, which is all inbox assembly needs.
//!
//! Received tuples live in an [`Inbound`] registry as raw vectors — no
//! pool chunks — so a crashing peer can never strand pooled chunks on
//! the receive side. They are re-chunked with
//! [`psgl_bsp::push_chunked`] during assembly; chunk boundaries are
//! irrelevant to determinism because unit regrouping flattens and
//! stably re-sorts every inbox anyway.
//!
//! ## Barrier
//!
//! After shipping, the worker reports per-partition metrics to the
//! coordinator (`barrier`) and spins until it holds **both** the
//! coordinator's `proceed` for the superstep and every peer's
//! end-of-step marker — or an `abort`, which releases everything and
//! surfaces as [`ExchangeDirective::Abort`]. The `proceed` carries the
//! global in-flight count, so every engine replica makes identical
//! halt/budget decisions.

use crate::control::{StartOrder, WorkerMsg};
use crate::frame::{encode, Frame, FrameKind};
use psgl_bsp::{
    push_chunked, CancelReason, Chunk, ChunkPool, Exchange, ExchangeDirective, ExchangeError,
    ExchangeOutcome, NetSuperstepMetrics, SuperstepMetrics, WorkerOutbox,
};
use psgl_core::Gpsi;
use psgl_graph::VertexId;
use psgl_service::wire::write_json;
use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the barrier spin sleeps between checks. The barrier is
/// latency-sensitive (every superstep crosses it) but the sleep keeps
/// the spin from burning a core while peers compute.
const BARRIER_POLL: Duration = Duration::from_micros(200);

/// How long the barrier wait tolerates a dead data connection before
/// giving up without a coordinator abort (which normally arrives well
/// within a heartbeat timeout).
const PEER_FAILURE_GRACE: Duration = Duration::from_secs(10);

/// Worker-side view of the control connection: a shared writer (main
/// loop, ping thread, and shard sink all send on it) plus the state the
/// control-reader thread routes coordinator messages into.
pub struct ControlHandle {
    writer: Mutex<TcpStream>,
    /// Coordinator messages routed by the control-reader thread.
    pub shared: Mutex<ControlShared>,
}

/// Mailbox filled by the control-reader thread, polled by the worker
/// main loop and the exchange barrier wait.
#[derive(Default)]
pub struct ControlShared {
    /// Proc id from `welcome`.
    pub proc: Option<u32>,
    /// Pending `start` orders, oldest first.
    pub starts: VecDeque<StartOrder>,
    /// `(attempt, superstep)` → `(global in-flight, checkpoint?)`.
    pub proceeds: HashMap<(u32, u32), (u64, bool)>,
    /// Latest abort: `(attempt, reason)`. Stale attempts ignore it.
    pub abort: Option<(u32, CancelReason)>,
    /// Coordinator said `stop`.
    pub stopped: bool,
    /// Control connection died.
    pub dead: bool,
}

impl ControlHandle {
    /// Wraps a connected control stream.
    pub fn new(writer: TcpStream) -> ControlHandle {
        ControlHandle { writer: Mutex::new(writer), shared: Mutex::new(ControlShared::default()) }
    }

    /// Sends one control message (serialized under the writer lock so
    /// concurrent senders cannot interleave lines).
    pub fn send(&self, msg: &WorkerMsg) -> std::io::Result<()> {
        let mut writer = self.writer.lock().expect("control writer lock poisoned");
        write_json(&mut *writer, &msg.to_json())
    }

    /// Whether the worker should keep running at all.
    pub fn live(&self) -> bool {
        let shared = self.shared.lock().expect("control state lock poisoned");
        !shared.stopped && !shared.dead
    }
}

/// Raw tuples received from remote peers, keyed by superstep and
/// (source partition, destination partition) route. One per attempt.
#[derive(Default)]
pub struct Inbound {
    state: Mutex<InboundState>,
}

#[derive(Default)]
struct InboundState {
    steps: HashMap<u32, StepInbound>,
    /// Procs whose inbound connection closed or errored — their
    /// end-of-step markers will never arrive.
    failed_peers: Vec<u32>,
}

#[derive(Default)]
struct StepInbound {
    routes: HashMap<(u32, u32), Vec<(VertexId, Gpsi)>>,
    eos: Vec<u32>,
    frames: u64,
    wire_bytes: u64,
}

impl Inbound {
    /// Appends a data frame's tuples (called by reader threads).
    pub fn deliver(&self, frame: Frame<Gpsi>, wire_bytes: u64) {
        let mut state = self.state.lock().expect("inbound lock poisoned");
        let step = state.steps.entry(frame.superstep).or_default();
        step.frames += 1;
        step.wire_bytes += wire_bytes;
        step.routes.entry((frame.src, frame.dst)).or_default().extend(frame.tuples);
    }

    /// Marks `proc`'s traffic for `superstep` complete.
    pub fn end_of_step(&self, proc: u32, superstep: u32, wire_bytes: u64) {
        let mut state = self.state.lock().expect("inbound lock poisoned");
        let step = state.steps.entry(superstep).or_default();
        step.frames += 1;
        step.wire_bytes += wire_bytes;
        step.eos.push(proc);
    }

    /// Records that `proc`'s connection died (reader thread exit).
    pub fn peer_failed(&self, proc: u32) {
        let mut state = self.state.lock().expect("inbound lock poisoned");
        state.failed_peers.push(proc);
    }

    /// Whether every proc in `peers` has ended `superstep`, or
    /// `Err(proc)` if one of them can no longer do so. Completion wins
    /// over failure: a peer that delivered its end-of-step and *then*
    /// closed (it finished the attempt) is not a failure for this
    /// superstep.
    fn step_complete(&self, superstep: u32, peers: &[u32]) -> Result<bool, u32> {
        let state = self.state.lock().expect("inbound lock poisoned");
        if state.steps.get(&superstep).is_some_and(|s| peers.iter().all(|p| s.eos.contains(p))) {
            return Ok(true);
        }
        if let Some(&dead) = state.failed_peers.iter().find(|p| peers.contains(p)) {
            return Err(dead);
        }
        Ok(false)
    }

    /// Removes and returns a superstep's accumulated traffic.
    fn take_step(&self, superstep: u32) -> StepInbound {
        let mut state = self.state.lock().expect("inbound lock poisoned");
        state.steps.remove(&superstep).unwrap_or_default()
    }
}

/// Per-attempt [`Inbound`] instances, shared between the data-plane
/// accept/reader threads and the run loop.
#[derive(Default)]
pub struct InboundRegistry {
    attempts: Mutex<HashMap<u32, Arc<Inbound>>>,
}

impl InboundRegistry {
    /// The inbox for `attempt`, created on first touch.
    pub fn get(&self, attempt: u32) -> Arc<Inbound> {
        let mut attempts = self.attempts.lock().expect("registry lock poisoned");
        Arc::clone(attempts.entry(attempt).or_default())
    }

    /// Drops attempts older than `attempt` — their traffic can never be
    /// consumed once a newer attempt started.
    pub fn retire_before(&self, attempt: u32) {
        let mut attempts = self.attempts.lock().expect("registry lock poisoned");
        attempts.retain(|&a, _| a >= attempt);
    }
}

/// The remote [`Exchange`]: one per (worker process, attempt).
pub struct TcpExchange {
    num_partitions: usize,
    locals: Vec<usize>,
    /// Global partition id → owning proc.
    owners: Vec<u32>,
    my_proc: u32,
    /// Peer procs (everyone alive but me), ascending.
    peer_procs: Vec<u32>,
    /// Outbound data connections, one per peer proc.
    writers: HashMap<u32, Mutex<BufWriter<TcpStream>>>,
    inbound: Arc<Inbound>,
    control: Arc<ControlHandle>,
    attempt: u32,
    /// Chaos hook: fail the exchange entered at this superstep,
    /// simulating a worker crash (tests and the CLI's fault injection).
    die_at_superstep: Option<u32>,
    /// Per-superstep network counters, harvested into the `done`
    /// message after the run.
    net_history: Mutex<Vec<(u32, NetSuperstepMetrics)>>,
}

impl TcpExchange {
    /// Assembles the exchange from an accepted `start` order and the
    /// data-plane connections built for it.
    pub fn new(
        start: &StartOrder,
        my_proc: u32,
        writers: HashMap<u32, Mutex<BufWriter<TcpStream>>>,
        inbound: Arc<Inbound>,
        control: Arc<ControlHandle>,
        die_at_superstep: Option<u32>,
    ) -> TcpExchange {
        let peer_procs = start.peers.iter().map(|&(p, _)| p).filter(|&p| p != my_proc).collect();
        TcpExchange {
            num_partitions: start.owners.len(),
            locals: start.partitions.iter().map(|&p| p as usize).collect(),
            owners: start.owners.clone(),
            my_proc,
            peer_procs,
            writers,
            inbound,
            control,
            attempt: start.attempt,
            die_at_superstep,
            net_history: Mutex::new(Vec::new()),
        }
    }

    /// The per-superstep network counters recorded so far.
    pub fn net_history(&self) -> Vec<(u32, NetSuperstepMetrics)> {
        self.net_history.lock().expect("net history lock poisoned").clone()
    }

    /// Releases every chunk still held locally (used on every failure
    /// and abort path — the exchange contract requires a balanced pool
    /// before returning).
    fn release_held(
        pool: &ChunkPool<Gpsi>,
        self_chunks: &mut [Vec<Chunk<Gpsi>>],
        local_routes: &mut HashMap<(u32, u32), Vec<Chunk<Gpsi>>>,
    ) {
        for chunks in self_chunks.iter_mut() {
            for chunk in chunks.drain(..) {
                pool.release(chunk);
            }
        }
        for (_, chunks) in local_routes.drain() {
            for chunk in chunks {
                pool.release(chunk);
            }
        }
    }

    /// What the barrier wait resolved to. A failed peer does not end
    /// the wait immediately: the coordinator detects the same death
    /// (heartbeat lapse or control EOF) and aborts the attempt, which
    /// is the clean exit — only if no abort arrives within
    /// [`PEER_FAILURE_GRACE`] does the exchange give up on its own.
    fn await_barrier(&self, superstep: u32) -> BarrierOutcome {
        let mut peer_failed_at: Option<(Instant, u32)> = None;
        loop {
            {
                let shared = self.control.shared.lock().expect("control state lock poisoned");
                if let Some((attempt, reason)) = shared.abort {
                    if attempt == self.attempt {
                        return BarrierOutcome::Abort(reason);
                    }
                }
                if shared.stopped || shared.dead {
                    return BarrierOutcome::Abort(CancelReason::Disconnected);
                }
                if let Some(&(in_flight, checkpoint)) =
                    shared.proceeds.get(&(self.attempt, superstep))
                {
                    drop(shared);
                    match self.inbound.step_complete(superstep, &self.peer_procs) {
                        Ok(true) => return BarrierOutcome::Proceed { in_flight, checkpoint },
                        Ok(false) => {}
                        Err(proc) => {
                            let (since, _) = *peer_failed_at.get_or_insert((Instant::now(), proc));
                            if since.elapsed() > PEER_FAILURE_GRACE {
                                return BarrierOutcome::PeerFailed(proc);
                            }
                        }
                    }
                }
            }
            std::thread::sleep(BARRIER_POLL);
        }
    }
}

enum BarrierOutcome {
    Proceed { in_flight: u64, checkpoint: bool },
    Abort(CancelReason),
    PeerFailed(u32),
}

impl Exchange<Gpsi> for TcpExchange {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn local_partitions(&self) -> Vec<usize> {
        self.locals.clone()
    }

    fn exchange(
        &self,
        superstep: u32,
        pool: &ChunkPool<Gpsi>,
        outs: Vec<WorkerOutbox<Gpsi>>,
        step: &SuperstepMetrics,
    ) -> Result<ExchangeOutcome<Gpsi>, ExchangeError> {
        let l = self.locals.len();
        if self.die_at_superstep == Some(superstep) {
            // Chaos: release everything (the exchange-error contract)
            // and fail; the worker harness turns this into a silent
            // process death for the coordinator to detect.
            for (remote, local) in outs {
                for chunks in remote {
                    for chunk in chunks {
                        pool.release(chunk);
                    }
                }
                for chunk in local {
                    pool.release(chunk);
                }
            }
            return Err(ExchangeError {
                superstep,
                message: format!("chaos: worker killed at superstep {superstep}"),
            });
        }

        let mut net = NetSuperstepMetrics::default();
        // Split outboxes into self-delivered chunks, locally-routed
        // chunks (both partitions hosted here), and per-peer wire
        // buffers. Wire chunks are serialized and released immediately.
        let mut self_chunks: Vec<Vec<Chunk<Gpsi>>> = Vec::with_capacity(l);
        let mut local_routes: HashMap<(u32, u32), Vec<Chunk<Gpsi>>> = HashMap::new();
        let mut wire_bufs: HashMap<u32, Vec<u8>> =
            self.peer_procs.iter().map(|&p| (p, Vec::new())).collect();
        for (slot, (remote, local)) in outs.into_iter().enumerate() {
            let src = self.locals[slot] as u32;
            self_chunks.push(local);
            for (dst, chunks) in remote.into_iter().enumerate() {
                if chunks.is_empty() {
                    continue;
                }
                let owner = self.owners[dst];
                if owner == self.my_proc {
                    local_routes.insert((src, dst as u32), chunks);
                    continue;
                }
                let buf = wire_bufs.get_mut(&owner).expect("owner is a peer");
                for chunk in chunks {
                    let frame = Frame {
                        kind: FrameKind::Data,
                        superstep,
                        src,
                        dst: dst as u32,
                        tuples: chunk.clone(),
                    };
                    buf.extend_from_slice(&encode(&frame));
                    net.frames_sent += 1;
                    pool.release(chunk);
                }
            }
        }

        // One buffered write + end-of-step per peer.
        let mut fail: Option<String> = None;
        for &proc in &self.peer_procs {
            let mut buf = wire_bufs.remove(&proc).expect("buffer exists");
            buf.extend_from_slice(&encode(&Frame::<Gpsi>::signal(
                FrameKind::EndOfStep,
                superstep,
                self.my_proc,
            )));
            net.frames_sent += 1;
            net.wire_bytes_sent += buf.len() as u64;
            let mut writer = self.writers[&proc].lock().expect("data writer lock poisoned");
            if let Err(e) = writer.write_all(&buf).and_then(|()| writer.flush()) {
                fail = Some(format!("data send to proc {proc} failed: {e}"));
                break;
            }
        }
        if fail.is_none() {
            let barrier = WorkerMsg::Barrier {
                attempt: self.attempt,
                superstep,
                partitions: self.locals.iter().map(|&p| p as u32).collect(),
                metrics: step.workers.clone(),
            };
            if let Err(e) = self.control.send(&barrier) {
                fail = Some(format!("barrier report failed: {e}"));
            }
        }
        if let Some(message) = fail {
            Self::release_held(pool, &mut self_chunks, &mut local_routes);
            return Err(ExchangeError { superstep, message });
        }

        let wait_start = Instant::now();
        let outcome = self.await_barrier(superstep);
        net.barrier_wait_nanos = wait_start.elapsed().as_nanos() as u64;
        match outcome {
            BarrierOutcome::Abort(reason) => {
                Self::release_held(pool, &mut self_chunks, &mut local_routes);
                self.net_history.lock().expect("net history lock poisoned").push((superstep, net));
                Ok(ExchangeOutcome {
                    inboxes: (0..l).map(|_| Vec::new()).collect(),
                    in_flight: 0,
                    net,
                    directive: ExchangeDirective::Abort(reason),
                })
            }
            BarrierOutcome::PeerFailed(proc) => {
                Self::release_held(pool, &mut self_chunks, &mut local_routes);
                Err(ExchangeError {
                    superstep,
                    message: format!("data connection from proc {proc} died"),
                })
            }
            BarrierOutcome::Proceed { in_flight, checkpoint } => {
                let mut wire = self.inbound.take_step(superstep);
                net.frames_received = wire.frames;
                net.wire_bytes_received = wire.wire_bytes;
                // Assemble each local inbox in global source-partition
                // order — the determinism contract. Self-sends slot in
                // at the destination's own source position, exactly as
                // the in-process exchange does.
                let mut inboxes: Vec<Vec<Chunk<Gpsi>>> = Vec::with_capacity(l);
                for (slot, &dst) in self.locals.iter().enumerate() {
                    let dst = dst as u32;
                    let mut inbox: Vec<Chunk<Gpsi>> = Vec::new();
                    for src in 0..self.num_partitions as u32 {
                        if src == dst {
                            inbox.append(&mut self_chunks[slot]);
                        } else if self.owners[src as usize] == self.my_proc {
                            if let Some(mut chunks) = local_routes.remove(&(src, dst)) {
                                inbox.append(&mut chunks);
                            }
                        } else if let Some(tuples) = wire.routes.remove(&(src, dst)) {
                            for (v, gpsi) in tuples {
                                push_chunked(pool, &mut inbox, v, gpsi);
                            }
                        }
                    }
                    inboxes.push(inbox);
                }
                debug_assert!(local_routes.is_empty(), "route to a non-local destination");
                debug_assert!(wire.routes.is_empty(), "wire tuples for a non-local destination");
                self.net_history.lock().expect("net history lock poisoned").push((superstep, net));
                let directive = if checkpoint {
                    ExchangeDirective::CheckpointAndContinue
                } else {
                    ExchangeDirective::Continue
                };
                Ok(ExchangeOutcome { inboxes, in_flight, net, directive })
            }
        }
    }
}

/// Parses a [`CancelReason`] from its `as_str` form (used for abort
/// messages on the wire). Unknown strings map to `Explicit`.
pub fn parse_cancel_reason(s: &str) -> CancelReason {
    match s {
        "disconnected" => CancelReason::Disconnected,
        "deadline" => CancelReason::Deadline,
        "budget" => CancelReason::Budget,
        _ => CancelReason::Explicit,
    }
}
