//! The binary data-plane frame codec.
//!
//! Worker-to-worker Gpsi traffic travels as length-prefixed binary
//! frames; the JSON control channel (see [`crate::control`]) never
//! carries message tuples. Layout:
//!
//! ```text
//! length: u32 LE          bytes that follow (not counting this field)
//! magic:  u32 LE          "PSGW"
//! kind:   u8              1 = Data, 2 = EndOfStep, 3 = Hello
//! superstep: u32 LE       Data/EndOfStep: superstep; Hello: attempt
//! src:    u32 LE          Data: source partition; EndOfStep/Hello: proc
//! dst:    u32 LE          Data: destination partition; else 0
//! count:  u32 LE          number of tuples (Data only)
//! payload                 count × (VertexId u32 LE + message)
//! checksum: u64 LE        FxHash of everything from magic to payload
//! ```
//!
//! The checksum is verified *before* any field is interpreted, so a
//! corrupt frame is rejected as [`FrameError::ChecksumMismatch`] rather
//! than producing garbage tuples. All multi-byte fields are
//! little-endian; a [`Gpsi`] serializes through
//! [`Gpsi::to_raw_parts`]/[`Gpsi::from_raw_parts`] exactly as the
//! checkpoint format does.

use bytes::{BufMut, BytesMut};
use psgl_core::gpsi::{MAX_GPSI_VERTICES, UNMAPPED};
use psgl_core::Gpsi;
use psgl_graph::hash::FxHasher;
use psgl_graph::VertexId;
use std::hash::Hasher;
use std::io::Read;

/// Frame magic, `"PSGW"` as a little-endian u32.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"PSGW");

/// Upper bound on a single frame's body, rejecting absurd length
/// prefixes before allocating.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Fixed header bytes inside the body: magic + kind + superstep + src +
/// dst + count.
pub const HEADER_BYTES: usize = 4 + 1 + 4 + 4 + 4 + 4;

/// Trailing checksum bytes.
pub const CHECKSUM_BYTES: usize = 8;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Message tuples for one (source partition, destination partition)
    /// route of one superstep.
    Data,
    /// Sender has shipped everything for this superstep on this
    /// connection; TCP ordering makes it a valid completion marker.
    EndOfStep,
    /// First frame on a data connection: identifies the sending proc and
    /// the attempt the connection belongs to.
    Hello,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 1,
            FrameKind::EndOfStep => 2,
            FrameKind::Hello => 3,
        }
    }

    fn from_u8(v: u8) -> Result<FrameKind, FrameError> {
        match v {
            1 => Ok(FrameKind::Data),
            2 => Ok(FrameKind::EndOfStep),
            3 => Ok(FrameKind::Hello),
            other => Err(FrameError::BadKind(other)),
        }
    }
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<M> {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Superstep (Data/EndOfStep) or attempt (Hello).
    pub superstep: u32,
    /// Source partition (Data) or sending proc (EndOfStep/Hello).
    pub src: u32,
    /// Destination partition (Data only).
    pub dst: u32,
    /// The message tuples (Data only; empty otherwise).
    pub tuples: Vec<(VertexId, M)>,
}

impl<M> Frame<M> {
    /// A control-ish frame with no payload.
    pub fn signal(kind: FrameKind, superstep: u32, src: u32) -> Frame<M> {
        Frame { kind, superstep, src, dst: 0, tuples: Vec::new() }
    }
}

/// Typed decode failures. Every corrupt or truncated input maps to one
/// of these — the codec never panics on wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Input ended before the length prefix or the promised body.
    Truncated,
    /// Magic bytes do not spell `PSGW`.
    BadMagic,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Checksum over the body does not match the trailer.
    ChecksumMismatch,
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The advertised body length.
        len: u32,
        /// The enforced cap.
        limit: u32,
    },
    /// Payload size disagrees with `count`, or a tuple fails validation.
    BadPayload(&'static str),
    /// The underlying reader failed (streaming [`read_frame`] only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::Oversized { len, limit } => {
                write!(f, "frame body of {len} bytes exceeds the {limit}-byte cap")
            }
            FrameError::BadPayload(why) => write!(f, "bad frame payload: {why}"),
            FrameError::Io(kind) => write!(f, "frame read failed: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A message type that can ride in a [`FrameKind::Data`] payload.
pub trait WireMessage: Copy {
    /// Exact serialized size in bytes.
    const WIRE_BYTES: usize;
    /// Appends exactly [`Self::WIRE_BYTES`] bytes.
    fn put(&self, buf: &mut BytesMut);
    /// Parses from exactly [`Self::WIRE_BYTES`] bytes.
    fn get(bytes: &[u8]) -> Result<Self, FrameError>;
}

impl WireMessage for u64 {
    const WIRE_BYTES: usize = 8;

    fn put(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }

    fn get(bytes: &[u8]) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(bytes.try_into().expect("sized by caller")))
    }
}

impl WireMessage for Gpsi {
    // mapping (12 × u32) + black u16 + mapped u16 + verified u128 +
    // expanding u8.
    const WIRE_BYTES: usize = MAX_GPSI_VERTICES * 4 + 2 + 2 + 16 + 1;

    fn put(&self, buf: &mut BytesMut) {
        let (mapping, black, mapped, verified, expanding) = self.to_raw_parts();
        for v in mapping {
            buf.put_u32_le(v);
        }
        buf.put_u16_le(black);
        buf.put_u16_le(mapped);
        buf.put_u128_le(verified);
        buf.put_u8(expanding);
    }

    fn get(bytes: &[u8]) -> Result<Gpsi, FrameError> {
        let mut mapping = [UNMAPPED; MAX_GPSI_VERTICES];
        for (i, m) in mapping.iter_mut().enumerate() {
            *m = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("sized"));
        }
        let at = MAX_GPSI_VERTICES * 4;
        let black = u16::from_le_bytes(bytes[at..at + 2].try_into().expect("sized"));
        let mapped = u16::from_le_bytes(bytes[at + 2..at + 4].try_into().expect("sized"));
        let verified = u128::from_le_bytes(bytes[at + 4..at + 20].try_into().expect("sized"));
        let expanding = bytes[at + 20];
        if expanding as usize >= MAX_GPSI_VERTICES {
            return Err(FrameError::BadPayload("gpsi expanding vertex out of range"));
        }
        if black & !mapped != 0 {
            return Err(FrameError::BadPayload("gpsi black set exceeds mapped set"));
        }
        Ok(Gpsi::from_raw_parts(mapping, black, mapped, verified, expanding))
    }
}

/// Encodes a frame to its full wire form (length prefix included).
pub fn encode<M: WireMessage>(frame: &Frame<M>) -> Vec<u8> {
    let tuple_bytes = 4 + M::WIRE_BYTES;
    let body_len = HEADER_BYTES + frame.tuples.len() * tuple_bytes + CHECKSUM_BYTES;
    debug_assert!(body_len <= MAX_FRAME_BYTES as usize, "frame body exceeds the wire cap");
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32_le(body_len as u32);
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u8(frame.kind.to_u8());
    buf.put_u32_le(frame.superstep);
    buf.put_u32_le(frame.src);
    buf.put_u32_le(frame.dst);
    buf.put_u32_le(frame.tuples.len() as u32);
    for (v, m) in &frame.tuples {
        buf.put_u32_le(*v);
        m.put(&mut buf);
    }
    let mut hasher = FxHasher::default();
    hasher.write(&buf[4..]);
    let checksum = hasher.finish();
    buf.put_u64_le(checksum);
    Vec::from(&buf[..])
}

/// Decodes one frame from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode<M: WireMessage>(buf: &[u8]) -> Result<(Frame<M>, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("sized"));
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len, limit: MAX_FRAME_BYTES });
    }
    let len = len as usize;
    if buf.len() < 4 + len {
        return Err(FrameError::Truncated);
    }
    let frame = decode_body(&buf[4..4 + len])?;
    Ok((frame, 4 + len))
}

/// Decodes a frame body (everything after the length prefix). The
/// checksum is verified before any field is parsed.
pub fn decode_body<M: WireMessage>(body: &[u8]) -> Result<Frame<M>, FrameError> {
    if body.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(FrameError::Truncated);
    }
    let (covered, trailer) = body.split_at(body.len() - CHECKSUM_BYTES);
    let mut hasher = FxHasher::default();
    hasher.write(covered);
    if hasher.finish() != u64::from_le_bytes(trailer.try_into().expect("sized")) {
        return Err(FrameError::ChecksumMismatch);
    }
    if u32::from_le_bytes(covered[..4].try_into().expect("sized")) != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = FrameKind::from_u8(covered[4])?;
    let superstep = u32::from_le_bytes(covered[5..9].try_into().expect("sized"));
    let src = u32::from_le_bytes(covered[9..13].try_into().expect("sized"));
    let dst = u32::from_le_bytes(covered[13..17].try_into().expect("sized"));
    let count = u32::from_le_bytes(covered[17..21].try_into().expect("sized")) as usize;
    let payload = &covered[HEADER_BYTES..];
    let tuple_bytes = 4 + M::WIRE_BYTES;
    if payload.len() != count * tuple_bytes {
        return Err(FrameError::BadPayload("payload size disagrees with tuple count"));
    }
    let mut tuples = Vec::with_capacity(count);
    for i in 0..count {
        let at = i * tuple_bytes;
        let v = u32::from_le_bytes(payload[at..at + 4].try_into().expect("sized"));
        let m = M::get(&payload[at + 4..at + tuple_bytes])?;
        tuples.push((v, m));
    }
    Ok(Frame { kind, superstep, src, dst, tuples })
}

/// Reads one frame from a stream, returning it with its full wire size
/// (length prefix included) for receive-side byte accounting.
/// `Ok(None)` means clean EOF at a frame boundary; EOF mid-frame is
/// [`FrameError::Truncated`].
pub fn read_frame<M: WireMessage>(
    reader: &mut impl Read,
) -> Result<Option<(Frame<M>, u64)>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len, limit: MAX_FRAME_BYTES });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.kind())
        }
    })?;
    decode_body(&body).map(|frame| Some((frame, 4 + len as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gpsi(seed: u32) -> Gpsi {
        let mut mapping = [UNMAPPED; MAX_GPSI_VERTICES];
        mapping[0] = seed;
        mapping[1] = seed.wrapping_mul(7) ^ 3;
        mapping[2] = seed.wrapping_add(100);
        Gpsi::from_raw_parts(mapping, 0b011, 0b111, (seed as u128) << 32 | 0b101, 2)
    }

    #[test]
    fn roundtrip_data_frame() {
        let frame = Frame {
            kind: FrameKind::Data,
            superstep: 3,
            src: 1,
            dst: 4,
            tuples: (0..10u32).map(|i| (i * 11, sample_gpsi(i))).collect(),
        };
        let bytes = encode(&frame);
        let (back, used) = decode::<Gpsi>(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, frame);
    }

    #[test]
    fn roundtrip_signal_frames() {
        for kind in [FrameKind::EndOfStep, FrameKind::Hello] {
            let frame: Frame<Gpsi> = Frame::signal(kind, 9, 2);
            let (back, _) = decode::<Gpsi>(&encode(&frame)).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn corrupt_byte_is_checksum_mismatch() {
        let frame = Frame {
            kind: FrameKind::Data,
            superstep: 0,
            src: 0,
            dst: 1,
            tuples: vec![(5, sample_gpsi(5))],
        };
        let mut bytes = encode(&frame);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(decode::<Gpsi>(&bytes).unwrap_err(), FrameError::ChecksumMismatch);
    }

    #[test]
    fn truncation_is_detected() {
        let frame: Frame<Gpsi> = Frame::signal(FrameKind::EndOfStep, 1, 0);
        let bytes = encode(&frame);
        for cut in 0..bytes.len() {
            assert!(decode::<Gpsi>(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![0u8; 32];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode::<Gpsi>(&bytes), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn streaming_read_matches_decode() {
        let frames: Vec<Frame<u64>> = vec![
            Frame { kind: FrameKind::Data, superstep: 0, src: 0, dst: 1, tuples: vec![(1, 2)] },
            Frame::signal(FrameKind::EndOfStep, 0, 0),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut cursor = &stream[..];
        for f in &frames {
            let (got, size) = read_frame::<u64>(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, f);
            assert_eq!(size as usize, encode(f).len());
        }
        assert!(read_frame::<u64>(&mut cursor).unwrap().is_none());
    }
}
