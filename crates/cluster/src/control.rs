//! The JSON control plane: worker ⇄ coordinator messages and the job
//! specification.
//!
//! Control traffic rides the same newline-delimited JSON transport as
//! the query service (`psgl_service::wire`), one message per line,
//! capped at [`psgl_service::wire::MAX_LINE_BYTES`]. Data tuples never
//! travel here — they use the binary frames in [`crate::frame`].
//!
//! Every run-scoped message carries the `attempt` number; a recovery
//! bumps it, and both sides drop messages tagged with a stale attempt,
//! which makes late barriers, shards, and aborts from a superseded
//! execution harmless.

use psgl_bsp::{NetSuperstepMetrics, WorkerSuperstepMetrics};
use psgl_core::{ExpandStats, PsglConfig};
use psgl_graph::{DataGraph, VertexId};
use psgl_service::{load_graph, GraphFormat, Json};
use std::time::Duration;

/// How a worker materializes the data graph. Shipping a spec instead of
/// the graph keeps `start` messages tiny and guarantees every process
/// (and the test oracle) builds the identical graph.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// `gnm:N:M:SEED` — Erdős–Rényi G(n, m).
    Gnm {
        /// Vertices.
        n: usize,
        /// Edges.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// `chung-lu:N:AVG:GAMMA:SEED` — power-law Chung–Lu.
    ChungLu {
        /// Vertices.
        n: usize,
        /// Target average degree.
        avg_degree: f64,
        /// Power-law exponent.
        gamma: f64,
        /// Generator seed.
        seed: u64,
    },
    /// `fixture:NAME` — a bundled fixture graph.
    Fixture(String),
    /// `file:PATH[:FORMAT]` — a graph file (`edge-list` or `binary`).
    File {
        /// Path on the worker's filesystem.
        path: String,
        /// On-disk format.
        format: GraphFormat,
    },
}

impl GraphSpec {
    /// Parses the spec mini-language described on the variants.
    pub fn parse(spec: &str) -> Result<GraphSpec, String> {
        let (family, rest) = spec.split_once(':').ok_or_else(|| {
            format!("bad graph spec {spec:?}: expected gnm:/chung-lu:/fixture:/file:")
        })?;
        let num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|e| format!("bad {what} in graph spec: {e}"))
        };
        match family {
            "gnm" => {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 3 {
                    return Err("gnm spec wants gnm:N:M:SEED".into());
                }
                Ok(GraphSpec::Gnm {
                    n: num(parts[0], "N")? as usize,
                    m: num(parts[1], "M")?,
                    seed: num(parts[2], "SEED")?,
                })
            }
            "chung-lu" => {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 4 {
                    return Err("chung-lu spec wants chung-lu:N:AVG:GAMMA:SEED".into());
                }
                let f = |s: &str, what: &str| -> Result<f64, String> {
                    s.parse::<f64>().map_err(|e| format!("bad {what} in graph spec: {e}"))
                };
                Ok(GraphSpec::ChungLu {
                    n: num(parts[0], "N")? as usize,
                    avg_degree: f(parts[1], "AVG")?,
                    gamma: f(parts[2], "GAMMA")?,
                    seed: num(parts[3], "SEED")?,
                })
            }
            "fixture" => Ok(GraphSpec::Fixture(rest.to_string())),
            "file" => match rest.rsplit_once(':') {
                Some((path, fmt)) if GraphFormat::parse(fmt).is_ok() => Ok(GraphSpec::File {
                    path: path.to_string(),
                    format: GraphFormat::parse(fmt).expect("checked"),
                }),
                _ => Ok(GraphSpec::File { path: rest.to_string(), format: GraphFormat::EdgeList }),
            },
            other => Err(format!("unknown graph spec family {other:?}")),
        }
    }

    /// Builds the graph.
    pub fn load(&self) -> Result<DataGraph, String> {
        match self {
            GraphSpec::Gnm { n, m, seed } => {
                psgl_graph::generators::erdos_renyi_gnm(*n, *m, *seed).map_err(|e| e.to_string())
            }
            GraphSpec::ChungLu { n, avg_degree, gamma, seed } => {
                psgl_graph::generators::chung_lu(*n, *avg_degree, *gamma, *seed)
                    .map_err(|e| e.to_string())
            }
            GraphSpec::Fixture(name) => {
                load_graph(name, GraphFormat::Fixture).map_err(|e| e.to_string())
            }
            GraphSpec::File { path, format } => {
                load_graph(path, *format).map_err(|e| e.to_string())
            }
        }
    }
}

/// Everything a worker needs to execute a run: the graph recipe, the
/// query, and the engine knobs that must agree at every participant.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Graph spec string (see [`GraphSpec::parse`]).
    pub graph: String,
    /// Pattern spec (`psgl_service::parse_pattern_spec` grammar).
    pub pattern: String,
    /// Distribution-strategy spec (`random`, `roulette`, `wa:ALPHA`).
    pub strategy: String,
    /// Number of *logical* partitions `K` — the global
    /// `PsglConfig::workers`. Must be ≥ the process count so every
    /// process hosts at least one partition.
    pub partitions: usize,
    /// Run seed (partitioner salt and distributor streams).
    pub seed: u64,
    /// Collect instance tuples, not just counts.
    pub collect_instances: bool,
    /// Checkpoint every this many supersteps (0 = never). Recovery can
    /// only roll back to a completed checkpoint.
    pub checkpoint_interval: u32,
    /// Superstep cap.
    pub max_supersteps: u32,
}

impl JobSpec {
    /// The [`PsglConfig`] every participant (and the centralized oracle)
    /// derives from this job. Work stealing stays off: in-process
    /// stealing reorders nothing observable, but the cluster contract is
    /// simplest to audit without it.
    pub fn config(&self) -> Result<PsglConfig, String> {
        let strategy = psgl_service::parse_strategy_spec(&self.strategy)?;
        let mut config = PsglConfig::with_workers(self.partitions)
            .strategy(strategy)
            .seed(self.seed)
            .collect(self.collect_instances);
        config.max_supersteps = self.max_supersteps;
        Ok(config)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("graph", Json::from(self.graph.as_str())),
            ("pattern", Json::from(self.pattern.as_str())),
            ("strategy", Json::from(self.strategy.as_str())),
            ("partitions", Json::from(self.partitions)),
            ("seed", Json::from(self.seed)),
            ("collect", Json::from(self.collect_instances)),
            ("checkpoint_interval", Json::from(self.checkpoint_interval)),
            ("max_supersteps", Json::from(self.max_supersteps)),
        ])
    }

    fn from_json(v: &Json) -> Result<JobSpec, String> {
        Ok(JobSpec {
            graph: str_field(v, "graph")?,
            pattern: str_field(v, "pattern")?,
            strategy: str_field(v, "strategy")?,
            partitions: u64_field(v, "partitions")? as usize,
            seed: u64_field(v, "seed")?,
            collect_instances: v.get("collect").and_then(Json::as_bool).unwrap_or(false),
            checkpoint_interval: u64_field(v, "checkpoint_interval")? as u32,
            max_supersteps: u64_field(v, "max_supersteps")? as u32,
        })
    }
}

/// A `start` order as the worker run loop consumes it (the fields of
/// [`CoordMsg::Start`], minus the tag).
#[derive(Clone, Debug)]
pub struct StartOrder {
    /// Execution attempt.
    pub attempt: u32,
    /// The job.
    pub job: JobSpec,
    /// Global partition ids this worker hosts, ascending.
    pub partitions: Vec<u32>,
    /// Partition → owning proc.
    pub owners: Vec<u32>,
    /// Alive procs and their data addresses.
    pub peers: Vec<(u32, String)>,
    /// Resume shard blobs for this worker's partitions.
    pub resume: Vec<Vec<u8>>,
}

/// Messages a worker sends to the coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// First message on the control connection.
    Join {
        /// Address the worker's data-plane listener is bound to.
        data_addr: String,
    },
    /// Heartbeat; carries no payload.
    Ping,
    /// This worker finished computing a superstep and shipped its remote
    /// outboxes; it now waits for the coordinator's `proceed`.
    Barrier {
        /// Execution attempt the barrier belongs to.
        attempt: u32,
        /// Superstep just computed.
        superstep: u32,
        /// Global partition ids, parallel to `metrics`.
        partitions: Vec<u32>,
        /// Per-partition metrics for the superstep.
        metrics: Vec<WorkerSuperstepMetrics>,
    },
    /// One partition's checkpoint shard (streamed to the coordinator).
    Shard {
        /// Execution attempt.
        attempt: u32,
        /// Superstep the restored run would resume at.
        superstep: u32,
        /// Global partition id.
        partition: u32,
        /// `CheckpointShard::to_bytes` output.
        bytes: Vec<u8>,
    },
    /// The run completed on this worker.
    Done {
        /// Execution attempt.
        attempt: u32,
        /// Expansion counters merged over this worker's partitions.
        expand: ExpandStats,
        /// Instance tuples (when collecting).
        instances: Option<Vec<Vec<VertexId>>>,
        /// Supersteps executed (identical at every worker).
        supersteps: u32,
        /// Per-superstep network counters observed by this worker.
        net: Vec<(u32, NetSuperstepMetrics)>,
        /// Times the chunk pool's cap forced the degraded path.
        pool_exhausted: u64,
        /// Chunk get/put imbalance at shutdown (0 on a clean run).
        chunks_outstanding: i64,
    },
    /// The run failed on this worker (bad job spec, graph load failure).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Messages the coordinator sends to a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum CoordMsg {
    /// Reply to `join`: the worker's stable proc id.
    Welcome {
        /// Proc id (stable across attempts).
        proc: u32,
    },
    /// Begin (or re-begin, after recovery) an execution attempt.
    Start {
        /// Execution attempt (0 = first).
        attempt: u32,
        /// The job.
        job: JobSpec,
        /// Global partition ids this worker hosts, ascending.
        partitions: Vec<u32>,
        /// Partition → owning proc, `job.partitions` entries.
        owners: Vec<u32>,
        /// Alive procs and their data-plane addresses.
        peers: Vec<(u32, String)>,
        /// Resume shards for this worker's partitions (empty on a fresh
        /// start), one `CheckpointShard::to_bytes` blob per partition.
        resume: Vec<Vec<u8>>,
    },
    /// Barrier release: every worker reported `superstep`.
    Proceed {
        /// Execution attempt.
        attempt: u32,
        /// Superstep being released.
        superstep: u32,
        /// Global in-flight message count — halt/budget decisions key
        /// off this, so it is identical at every worker.
        in_flight: u64,
        /// Capture a checkpoint of the incoming frontier before
        /// computing the next superstep.
        checkpoint: bool,
    },
    /// Cancel the named attempt (peer failure, deadline, explicit).
    Abort {
        /// Attempt being cancelled.
        attempt: u32,
        /// `CancelReason::as_str` form.
        reason: String,
    },
    /// Shut down for good.
    Stop,
}

impl WorkerMsg {
    /// Encodes for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerMsg::Join { data_addr } => Json::obj([
                ("type", Json::from("join")),
                ("data_addr", Json::from(data_addr.as_str())),
            ]),
            WorkerMsg::Ping => Json::obj([("type", Json::from("ping"))]),
            WorkerMsg::Barrier { attempt, superstep, partitions, metrics } => Json::obj([
                ("type", Json::from("barrier")),
                ("attempt", Json::from(*attempt)),
                ("superstep", Json::from(*superstep)),
                ("partitions", Json::from(partitions.clone())),
                ("metrics", Json::Arr(metrics.iter().map(worker_metrics_to_json).collect())),
            ]),
            WorkerMsg::Shard { attempt, superstep, partition, bytes } => Json::obj([
                ("type", Json::from("shard")),
                ("attempt", Json::from(*attempt)),
                ("superstep", Json::from(*superstep)),
                ("partition", Json::from(*partition)),
                ("bytes", Json::from(to_hex(bytes))),
            ]),
            WorkerMsg::Done {
                attempt,
                expand,
                instances,
                supersteps,
                net,
                pool_exhausted,
                chunks_outstanding,
            } => Json::obj([
                ("type", Json::from("done")),
                ("attempt", Json::from(*attempt)),
                ("expand", expand_to_json(expand)),
                (
                    "instances",
                    match instances {
                        Some(rows) => {
                            Json::Arr(rows.iter().map(|row| Json::from(row.clone())).collect())
                        }
                        None => Json::Null,
                    },
                ),
                ("supersteps", Json::from(*supersteps)),
                (
                    "net",
                    Json::Arr(
                        net.iter()
                            .map(|(s, n)| {
                                Json::Arr(vec![
                                    Json::from(*s),
                                    Json::from(n.frames_sent),
                                    Json::from(n.frames_received),
                                    Json::from(n.wire_bytes_sent),
                                    Json::from(n.wire_bytes_received),
                                    Json::from(n.barrier_wait_nanos),
                                    Json::from(n.exchange_nanos),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("pool_exhausted", Json::from(*pool_exhausted)),
                ("chunks_outstanding", Json::from(*chunks_outstanding)),
            ]),
            WorkerMsg::Error { message } => Json::obj([
                ("type", Json::from("error")),
                ("message", Json::from(message.as_str())),
            ]),
        }
    }

    /// Decodes from the wire.
    pub fn from_json(v: &Json) -> Result<WorkerMsg, String> {
        match str_field(v, "type")?.as_str() {
            "join" => Ok(WorkerMsg::Join { data_addr: str_field(v, "data_addr")? }),
            "ping" => Ok(WorkerMsg::Ping),
            "barrier" => {
                let partitions = u32_arr_field(v, "partitions")?;
                let metrics = v
                    .get("metrics")
                    .and_then(Json::as_arr)
                    .ok_or("barrier missing metrics")?
                    .iter()
                    .map(worker_metrics_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                if partitions.len() != metrics.len() {
                    return Err("barrier partitions/metrics length mismatch".into());
                }
                Ok(WorkerMsg::Barrier {
                    attempt: u64_field(v, "attempt")? as u32,
                    superstep: u64_field(v, "superstep")? as u32,
                    partitions,
                    metrics,
                })
            }
            "shard" => Ok(WorkerMsg::Shard {
                attempt: u64_field(v, "attempt")? as u32,
                superstep: u64_field(v, "superstep")? as u32,
                partition: u64_field(v, "partition")? as u32,
                bytes: from_hex(&str_field(v, "bytes")?)?,
            }),
            "done" => {
                let instances = match v.get("instances") {
                    None | Some(Json::Null) => None,
                    Some(rows) => Some(
                        rows.as_arr()
                            .ok_or("done instances must be an array")?
                            .iter()
                            .map(|row| u32_arr(row, "instance"))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                };
                let net = v
                    .get("net")
                    .and_then(Json::as_arr)
                    .ok_or("done missing net")?
                    .iter()
                    .map(|entry| {
                        let ns = u64_arr(entry, "net entry")?;
                        if ns.len() != 7 {
                            return Err("net entry wants 7 numbers".to_string());
                        }
                        Ok((
                            ns[0] as u32,
                            NetSuperstepMetrics {
                                frames_sent: ns[1],
                                frames_received: ns[2],
                                wire_bytes_sent: ns[3],
                                wire_bytes_received: ns[4],
                                barrier_wait_nanos: ns[5],
                                exchange_nanos: ns[6],
                            },
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(WorkerMsg::Done {
                    attempt: u64_field(v, "attempt")? as u32,
                    expand: expand_from_json(v.get("expand").ok_or("done missing expand")?)?,
                    instances,
                    supersteps: u64_field(v, "supersteps")? as u32,
                    net,
                    pool_exhausted: u64_field(v, "pool_exhausted")?,
                    chunks_outstanding: v
                        .get("chunks_outstanding")
                        .and_then(Json::as_i64)
                        .unwrap_or(0),
                })
            }
            "error" => Ok(WorkerMsg::Error { message: str_field(v, "message")? }),
            other => Err(format!("unknown worker message type {other:?}")),
        }
    }
}

impl CoordMsg {
    /// Encodes for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            CoordMsg::Welcome { proc } => {
                Json::obj([("type", Json::from("welcome")), ("proc", Json::from(*proc))])
            }
            CoordMsg::Start { attempt, job, partitions, owners, peers, resume } => Json::obj([
                ("type", Json::from("start")),
                ("attempt", Json::from(*attempt)),
                ("job", job.to_json()),
                ("partitions", Json::from(partitions.clone())),
                ("owners", Json::from(owners.clone())),
                (
                    "peers",
                    Json::Arr(
                        peers
                            .iter()
                            .map(|(p, addr)| {
                                Json::Arr(vec![Json::from(*p), Json::from(addr.as_str())])
                            })
                            .collect(),
                    ),
                ),
                ("resume", Json::Arr(resume.iter().map(|b| Json::from(to_hex(b))).collect())),
            ]),
            CoordMsg::Proceed { attempt, superstep, in_flight, checkpoint } => Json::obj([
                ("type", Json::from("proceed")),
                ("attempt", Json::from(*attempt)),
                ("superstep", Json::from(*superstep)),
                ("in_flight", Json::from(*in_flight)),
                ("checkpoint", Json::from(*checkpoint)),
            ]),
            CoordMsg::Abort { attempt, reason } => Json::obj([
                ("type", Json::from("abort")),
                ("attempt", Json::from(*attempt)),
                ("reason", Json::from(reason.as_str())),
            ]),
            CoordMsg::Stop => Json::obj([("type", Json::from("stop"))]),
        }
    }

    /// Decodes from the wire.
    pub fn from_json(v: &Json) -> Result<CoordMsg, String> {
        match str_field(v, "type")?.as_str() {
            "welcome" => Ok(CoordMsg::Welcome { proc: u64_field(v, "proc")? as u32 }),
            "start" => {
                let peers = v
                    .get("peers")
                    .and_then(Json::as_arr)
                    .ok_or("start missing peers")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().ok_or("peer must be [proc, addr]")?;
                        match pair {
                            [p, addr] => Ok((
                                p.as_u64().ok_or("bad peer proc")? as u32,
                                addr.as_str().ok_or("bad peer addr")?.to_string(),
                            )),
                            _ => Err("peer must be [proc, addr]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let resume = v
                    .get("resume")
                    .and_then(Json::as_arr)
                    .map(|blobs| {
                        blobs
                            .iter()
                            .map(|b| from_hex(b.as_str().ok_or("resume blob must be hex")?))
                            .collect::<Result<Vec<_>, String>>()
                    })
                    .transpose()?
                    .unwrap_or_default();
                Ok(CoordMsg::Start {
                    attempt: u64_field(v, "attempt")? as u32,
                    job: JobSpec::from_json(v.get("job").ok_or("start missing job")?)?,
                    partitions: u32_arr_field(v, "partitions")?,
                    owners: u32_arr_field(v, "owners")?,
                    peers,
                    resume,
                })
            }
            "proceed" => Ok(CoordMsg::Proceed {
                attempt: u64_field(v, "attempt")? as u32,
                superstep: u64_field(v, "superstep")? as u32,
                in_flight: u64_field(v, "in_flight")?,
                checkpoint: v.get("checkpoint").and_then(Json::as_bool).unwrap_or(false),
            }),
            "abort" => Ok(CoordMsg::Abort {
                attempt: u64_field(v, "attempt")? as u32,
                reason: str_field(v, "reason")?,
            }),
            "stop" => Ok(CoordMsg::Stop),
            other => Err(format!("unknown coordinator message type {other:?}")),
        }
    }
}

/// Per-partition superstep metrics as a fixed-order numeric array
/// (`elapsed` in nanoseconds).
fn worker_metrics_to_json(m: &WorkerSuperstepMetrics) -> Json {
    Json::Arr(vec![
        Json::from(m.active_vertices),
        Json::from(m.messages_in),
        Json::from(m.messages_out),
        Json::from(m.local_delivered),
        Json::from(m.chunks_stolen),
        Json::from(m.bytes_exchanged),
        Json::from(m.cost),
        Json::from(m.elapsed.as_nanos() as u64),
    ])
}

fn worker_metrics_from_json(v: &Json) -> Result<WorkerSuperstepMetrics, String> {
    let ns = u64_arr(v, "worker metrics")?;
    if ns.len() != 8 {
        return Err("worker metrics want 8 numbers".into());
    }
    Ok(WorkerSuperstepMetrics {
        active_vertices: ns[0],
        messages_in: ns[1],
        messages_out: ns[2],
        local_delivered: ns[3],
        chunks_stolen: ns[4],
        bytes_exchanged: ns[5],
        cost: ns[6],
        elapsed: Duration::from_nanos(ns[7]),
    })
}

/// Expansion counters as a fixed-order numeric array (field order of
/// [`ExpandStats`]).
fn expand_to_json(e: &ExpandStats) -> Json {
    Json::Arr(
        [
            e.expanded,
            e.generated,
            e.results,
            e.pruned_injectivity,
            e.pruned_degree,
            e.pruned_order,
            e.pruned_connectivity,
            e.pruned_label,
            e.died_gray_check,
            e.died_no_candidates,
            e.combinations_examined,
            e.index_probes,
            e.cost,
            e.kernel_close,
            e.kernel_twohop,
            e.cmap_probes,
            e.cmap_hits,
            e.intersect_gallop,
            e.intersect_probe,
        ]
        .into_iter()
        .map(Json::from)
        .collect(),
    )
}

fn expand_from_json(v: &Json) -> Result<ExpandStats, String> {
    let ns = u64_arr(v, "expand stats")?;
    if ns.len() != 19 {
        return Err("expand stats want 19 numbers".into());
    }
    Ok(ExpandStats {
        expanded: ns[0],
        generated: ns[1],
        results: ns[2],
        pruned_injectivity: ns[3],
        pruned_degree: ns[4],
        pruned_order: ns[5],
        pruned_connectivity: ns[6],
        pruned_label: ns[7],
        died_gray_check: ns[8],
        died_no_candidates: ns[9],
        combinations_examined: ns[10],
        index_probes: ns[11],
        cost: ns[12],
        kernel_close: ns[13],
        kernel_twohop: ns[14],
        cmap_probes: ns[15],
        cmap_hits: ns[16],
        intersect_gallop: ns[17],
        intersect_probe: ns[18],
    })
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn u64_arr(v: &Json, what: &str) -> Result<Vec<u64>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("{what} holds a non-number")))
        .collect()
}

fn u32_arr(v: &Json, what: &str) -> Result<Vec<u32>, String> {
    Ok(u64_arr(v, what)?.into_iter().map(|x| x as u32).collect())
}

fn u32_arr_field(v: &Json, key: &str) -> Result<Vec<u32>, String> {
    u32_arr(v.get(key).ok_or_else(|| format!("missing field {key:?}"))?, key)
}

/// Lower-hex encoding for checkpoint-shard blobs on the JSON channel.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex string has odd length".into());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn graph_spec_parses() {
        assert_eq!(
            GraphSpec::parse("gnm:100:400:7").unwrap(),
            GraphSpec::Gnm { n: 100, m: 400, seed: 7 }
        );
        assert_eq!(
            GraphSpec::parse("fixture:karate-club").unwrap(),
            GraphSpec::Fixture("karate-club".into())
        );
        assert!(matches!(
            GraphSpec::parse("file:/tmp/g.txt:edge-list").unwrap(),
            GraphSpec::File { .. }
        ));
        assert!(GraphSpec::parse("nope").is_err());
        assert!(GraphSpec::parse("gnm:1:2").is_err());
    }

    fn sample_job() -> JobSpec {
        JobSpec {
            graph: "gnm:60:300:7".into(),
            pattern: "triangle".into(),
            strategy: "roulette".into(),
            partitions: 6,
            seed: 42,
            collect_instances: true,
            checkpoint_interval: 2,
            max_supersteps: 64,
        }
    }

    #[test]
    fn worker_messages_roundtrip() {
        let msgs = vec![
            WorkerMsg::Join { data_addr: "127.0.0.1:4000".into() },
            WorkerMsg::Ping,
            WorkerMsg::Barrier {
                attempt: 1,
                superstep: 3,
                partitions: vec![0, 3],
                metrics: vec![
                    WorkerSuperstepMetrics {
                        active_vertices: 4,
                        messages_in: 10,
                        messages_out: 20,
                        local_delivered: 5,
                        chunks_stolen: 0,
                        bytes_exchanged: 900,
                        cost: 77,
                        elapsed: Duration::from_nanos(1234),
                    },
                    WorkerSuperstepMetrics::default(),
                ],
            },
            WorkerMsg::Shard { attempt: 0, superstep: 2, partition: 4, bytes: vec![1, 2, 250] },
            WorkerMsg::Done {
                attempt: 2,
                expand: ExpandStats { expanded: 9, results: 3, cost: 12, ..Default::default() },
                instances: Some(vec![vec![1, 2, 3], vec![4, 5, 6]]),
                supersteps: 4,
                net: vec![(
                    0,
                    NetSuperstepMetrics {
                        frames_sent: 1,
                        frames_received: 2,
                        wire_bytes_sent: 3,
                        wire_bytes_received: 4,
                        barrier_wait_nanos: 5,
                        exchange_nanos: 6,
                    },
                )],
                pool_exhausted: 0,
                chunks_outstanding: 0,
            },
            WorkerMsg::Error { message: "boom".into() },
        ];
        for msg in msgs {
            let json = Json::parse(&msg.to_json().to_string()).unwrap();
            assert_eq!(WorkerMsg::from_json(&json).unwrap(), msg);
        }
    }

    #[test]
    fn coordinator_messages_roundtrip() {
        let msgs = vec![
            CoordMsg::Welcome { proc: 2 },
            CoordMsg::Start {
                attempt: 1,
                job: sample_job(),
                partitions: vec![1, 4],
                owners: vec![0, 1, 2, 0, 1, 2],
                peers: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
                resume: vec![vec![9, 8, 7]],
            },
            CoordMsg::Proceed { attempt: 0, superstep: 5, in_flight: 1234, checkpoint: true },
            CoordMsg::Abort { attempt: 3, reason: "disconnected".into() },
            CoordMsg::Stop,
        ];
        for msg in msgs {
            let json = Json::parse(&msg.to_json().to_string()).unwrap();
            assert_eq!(CoordMsg::from_json(&json).unwrap(), msg);
        }
    }
}
