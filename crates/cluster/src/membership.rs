//! Worker liveness tracking.
//!
//! Socket-free by design: the coordinator's event loop feeds it
//! observations (any control message counts as a heartbeat) and asks
//! which workers have gone silent. Death is also reported eagerly when
//! a control connection drops; the timeout catches the harder case of a
//! worker that wedges without closing its socket.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Tracks when each worker was last heard from.
#[derive(Debug)]
pub struct Membership {
    last_seen: BTreeMap<u32, Instant>,
    timeout: Duration,
}

impl Membership {
    /// A tracker that declares a worker dead after `timeout` of silence.
    pub fn new(timeout: Duration) -> Membership {
        Membership { last_seen: BTreeMap::new(), timeout }
    }

    /// Registers a worker (or refreshes its heartbeat).
    pub fn touch(&mut self, proc: u32, now: Instant) {
        self.last_seen.insert(proc, now);
    }

    /// Stops tracking a worker (it died or was stopped).
    pub fn remove(&mut self, proc: u32) {
        self.last_seen.remove(&proc);
    }

    /// Workers silent for longer than the timeout, ascending by id.
    /// They stay tracked until [`Membership::remove`] — the caller
    /// decides when a timeout becomes a death.
    pub fn expired(&self, now: Instant) -> Vec<u32> {
        self.last_seen
            .iter()
            .filter(|(_, &seen)| now.duration_since(seen) > self.timeout)
            .map(|(&proc, _)| proc)
            .collect()
    }

    /// Tracked workers, ascending by id.
    pub fn procs(&self) -> Vec<u32> {
        self.last_seen.keys().copied().collect()
    }

    /// Number of tracked workers.
    pub fn len(&self) -> usize {
        self.last_seen.len()
    }

    /// Whether no workers are tracked.
    pub fn is_empty(&self) -> bool {
        self.last_seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_past_the_timeout_expires_a_worker() {
        let t0 = Instant::now();
        let mut m = Membership::new(Duration::from_millis(100));
        m.touch(0, t0);
        m.touch(1, t0);
        m.touch(2, t0);

        // Worker 1 keeps pinging; the others go quiet.
        let t1 = t0 + Duration::from_millis(80);
        m.touch(1, t1);
        assert!(m.expired(t1).is_empty());

        let t2 = t0 + Duration::from_millis(150);
        assert_eq!(m.expired(t2), vec![0, 2]);

        // Expiry does not untrack; removal does.
        assert_eq!(m.len(), 3);
        m.remove(0);
        m.remove(2);
        assert_eq!(m.expired(t2), Vec::<u32>::new());
        assert_eq!(m.procs(), vec![1]);
    }

    #[test]
    fn re_touch_revives_before_removal() {
        let t0 = Instant::now();
        let mut m = Membership::new(Duration::from_millis(50));
        m.touch(7, t0);
        let late = t0 + Duration::from_millis(100);
        assert_eq!(m.expired(late), vec![7]);
        m.touch(7, late);
        assert!(m.expired(late).is_empty());
    }
}
