#![warn(missing_docs)]

//! A distributed multi-process BSP runtime for PSgL.
//!
//! The in-process engine (`psgl-bsp`) runs its superstep loop over
//! threads and a shared-memory message plane. This crate stretches the
//! same loop across OS processes connected by real TCP sockets:
//!
//! - **wire plane** ([`frame`]): a length-prefixed binary frame codec
//!   (checksummed, bounded, typed errors) that carries the engine's
//!   `Chunk<Gpsi>` message plane between processes, with per-peer
//!   outbound batching so a superstep costs one write per peer;
//! - **membership and barriers** ([`coordinator`], [`membership`],
//!   [`control`]): workers register with a coordinator, partitions are
//!   assigned round-robin, and every superstep barrier — including the
//!   global in-flight count that keeps halt and budget decisions
//!   bit-identical to a single-process run — flows through JSON-lines
//!   control messages;
//! - **recovery** ([`coordinator`]): heartbeat lapses mark a worker
//!   dead; the coordinator aborts the attempt, rolls survivors back to
//!   the newest complete superstep-boundary checkpoint (shards streamed
//!   to the coordinator via [`control::WorkerMsg::Shard`]), reassigns
//!   the dead worker's partitions, and re-runs — deterministically
//!   reproducing the exact results of an uninterrupted run;
//! - **entry points** ([`worker::run_worker`],
//!   [`coordinator::run_cluster`], [`local::run_local`]): the `psgl
//!   cluster` CLI subcommands wrap the first two; the third is the
//!   in-process harness (threads + loopback sockets) the integration
//!   and chaos tests drive.
//!
//! The expansion kernel (`expand_gpsi`), scratch reuse, pruning, and
//! strategy code run unchanged inside each worker — the cluster swaps
//! only the exchange seam ([`exchange::TcpExchange`] implements
//! `psgl_bsp::Exchange`).

pub mod control;
pub mod coordinator;
pub mod exchange;
pub mod frame;
pub mod local;
pub mod membership;
pub mod worker;

pub use control::{CoordMsg, GraphSpec, JobSpec, StartOrder, WorkerMsg};
pub use coordinator::{run_cluster, ClusterConfig, ClusterError, ClusterOutcome};
pub use exchange::TcpExchange;
pub use frame::{
    decode, encode, read_frame, Frame, FrameError, FrameKind, WireMessage, FRAME_MAGIC,
    MAX_FRAME_BYTES,
};
pub use local::{run_local, LocalClusterConfig};
pub use membership::Membership;
pub use worker::{run_worker, WorkerOptions};
