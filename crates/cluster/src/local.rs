//! In-process cluster harness: coordinator plus worker threads over
//! loopback sockets.
//!
//! Everything real about the cluster — the TCP data plane, the binary
//! frame codec, the control protocol, membership, recovery — runs
//! exactly as it would across processes; only the process boundary is
//! replaced by threads. Integration tests and the chaos (kill a
//! worker) scenarios build on this harness.

use std::net::TcpListener;
use std::time::Duration;

use crate::control::JobSpec;
use crate::coordinator::{run_cluster, ClusterConfig, ClusterError, ClusterOutcome};
use crate::worker::{run_worker, WorkerOptions};

/// Configuration for an in-process cluster run.
#[derive(Clone, Debug)]
pub struct LocalClusterConfig {
    /// Worker threads to spawn.
    pub workers: usize,
    /// The job to execute.
    pub job: JobSpec,
    /// Chaos hook: `(worker_index, superstep)` — the `worker_index`-th
    /// spawned worker dies on entering the exchange of `superstep`
    /// during attempt 0. Note the index is spawn order, not the proc id
    /// the coordinator assigns (those follow connect order).
    pub die_at: Option<(usize, u32)>,
    /// Silence threshold for declaring a worker dead. Keep this well
    /// above the 100 ms ping interval; lower it (e.g. to ~1 s) in
    /// recovery tests so death detection does not dominate runtime.
    pub heartbeat_timeout: Duration,
    /// Optional wall-clock budget for the whole run.
    pub deadline: Option<Duration>,
    /// Trace sink for coordinator membership/recovery events; defaults
    /// to the process tracer. Tests pass a dedicated tracer to assert
    /// the recovery event sequence.
    pub tracer: psgl_obs::Tracer,
}

impl LocalClusterConfig {
    /// A config with the conventional 3 s heartbeat, no chaos, no
    /// deadline.
    pub fn new(workers: usize, job: JobSpec) -> LocalClusterConfig {
        LocalClusterConfig {
            workers,
            job,
            die_at: None,
            heartbeat_timeout: Duration::from_secs(3),
            deadline: None,
            tracer: psgl_obs::tracer().clone(),
        }
    }
}

/// Runs a complete cluster — coordinator in this thread, workers on
/// spawned threads — and returns the coordinator's outcome after every
/// worker thread has been joined.
pub fn run_local(cfg: LocalClusterConfig) -> Result<ClusterOutcome, ClusterError> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| ClusterError::Io(e.to_string()))?;
    let addr = listener.local_addr().map_err(|e| ClusterError::Io(e.to_string()))?.to_string();

    let mut handles = Vec::with_capacity(cfg.workers);
    for index in 0..cfg.workers {
        let addr = addr.clone();
        let opts = WorkerOptions {
            die_at_superstep: cfg
                .die_at
                .and_then(|(w, superstep)| (w == index).then_some(superstep)),
            ..WorkerOptions::default()
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("psgl-worker-{index}"))
                .spawn(move || run_worker(&addr, opts))
                .map_err(|e| ClusterError::Io(e.to_string()))?,
        );
    }

    let cluster = ClusterConfig {
        workers: cfg.workers,
        job: cfg.job,
        heartbeat_timeout: cfg.heartbeat_timeout,
        join_timeout: Duration::from_secs(30),
        deadline: cfg.deadline,
        linger: Duration::ZERO,
        tracer: cfg.tracer,
    };
    let result = run_cluster(listener, cluster);
    // run_cluster severed every control socket on exit, so worker run
    // loops observe stop/death and return; joins cannot hang.
    for handle in handles {
        let _ = handle.join();
    }
    result
}
