//! The worker process: joins a coordinator, hosts a slice of the
//! partitions, and runs the unchanged PSgL engine with a
//! [`TcpExchange`] plugged into the delivery seam.
//!
//! Thread layout per worker process:
//!
//! - **main loop** — waits for `start` orders, builds the per-attempt
//!   data mesh, runs `list_subgraphs_resumable`, reports `done`.
//! - **control reader** — routes coordinator messages into
//!   [`ControlShared`]; a dead control connection ends the worker.
//! - **ping** — heartbeats every [`WorkerOptions::ping_interval`].
//! - **data accept + one reader per inbound connection** — append raw
//!   tuples into the attempt's [`Inbound`] registry entry.
//!
//! A worker survives recovery: when the coordinator aborts an attempt
//! and sends a new `start` with reassigned partitions and resume
//! shards, the main loop simply runs again. The engine restores the
//! shards through `ClusterControls::resume_shards`, which rebuilds
//! distributor RNG streams and expansion counters exactly, so the
//! re-run is bit-identical to an uninterrupted one.

use crate::control::{CoordMsg, GraphSpec, StartOrder, WorkerMsg};
use crate::exchange::{parse_cancel_reason, ControlHandle, InboundRegistry, TcpExchange};
use crate::frame::{encode, read_frame, Frame, FrameKind};
use psgl_core::{
    list_subgraphs_resumable, CheckpointShard, ClusterControls, Gpsi, ListingEnd, PsglShared,
    RunControls, RunnerHooks, ShardSink,
};
use psgl_graph::DataGraph;
use psgl_service::wire::{read_json, MAX_LINE_BYTES};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker tuning and fault-injection knobs.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Chaos hook: crash (silently, as a real failure would) when the
    /// exchange for this superstep begins — first attempt only, so the
    /// recovered run completes.
    pub die_at_superstep: Option<u32>,
    /// Heartbeat interval.
    pub ping_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions { die_at_superstep: None, ping_interval: Duration::from_millis(100) }
    }
}

/// Connects to a coordinator and serves until told to stop (or until
/// the control connection dies).
pub fn run_worker(coordinator: &str, opts: WorkerOptions) -> Result<(), String> {
    let stream = TcpStream::connect(coordinator)
        .map_err(|e| format!("connect to coordinator {coordinator}: {e}"))?;
    run_worker_on(stream, opts)
}

fn run_worker_on(stream: TcpStream, opts: WorkerOptions) -> Result<(), String> {
    let _ = stream.set_nodelay(true);
    let control = Arc::new(ControlHandle::new(
        stream.try_clone().map_err(|e| format!("clone control stream: {e}"))?,
    ));
    let registry = Arc::new(InboundRegistry::default());

    // Data-plane listener; the accept thread is woken for shutdown by a
    // self-connection.
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind data listener: {e}"))?;
    let data_addr =
        listener.local_addr().map_err(|e| format!("data listener addr: {e}"))?.to_string();
    let accept_shutdown = Arc::new(AtomicBool::new(false));
    {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&accept_shutdown);
        std::thread::spawn(move || data_accept_loop(listener, registry, shutdown));
    }
    {
        let control = Arc::clone(&control);
        std::thread::spawn(move || control_reader(stream, control));
    }
    control
        .send(&WorkerMsg::Join { data_addr: data_addr.clone() })
        .map_err(|e| format!("join failed: {e}"))?;
    {
        let control = Arc::clone(&control);
        let interval = opts.ping_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if !control.live() || control.send(&WorkerMsg::Ping).is_err() {
                let mut shared = control.shared.lock().expect("control state lock poisoned");
                shared.dead = true;
                return;
            }
        });
    }

    // Graph cache: attempts of the same job reload nothing.
    let mut graph_cache: Option<(String, DataGraph)> = None;
    loop {
        let order = {
            let mut shared = control.shared.lock().expect("control state lock poisoned");
            if shared.stopped || shared.dead {
                None
            } else {
                match shared.starts.pop_front() {
                    Some(order) => Some(order),
                    None => {
                        drop(shared);
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                }
            }
        };
        let Some(order) = order else { break };
        registry.retire_before(order.attempt);
        if let AttemptEnd::Crashed =
            run_attempt(&order, &control, &registry, &mut graph_cache, &opts)
        {
            break;
        }
    }

    // Shut down helper threads: the stopped flag ends the ping loop,
    // the self-connection wakes the accept loop.
    control.shared.lock().expect("control state lock poisoned").stopped = true;
    accept_shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(&data_addr);
    Ok(())
}

enum AttemptEnd {
    /// Wait for the next `start` (or stop).
    Continue,
    /// Chaos crash: exit the worker without a word, like a real death.
    Crashed,
}

fn run_attempt(
    order: &StartOrder,
    control: &Arc<ControlHandle>,
    registry: &Arc<InboundRegistry>,
    graph_cache: &mut Option<(String, DataGraph)>,
    opts: &WorkerOptions,
) -> AttemptEnd {
    let report = |message: String| {
        let _ = control.send(&WorkerMsg::Error { message });
        AttemptEnd::Continue
    };
    let my_proc = {
        let shared = control.shared.lock().expect("control state lock poisoned");
        match shared.proc {
            // The control channel is ordered, so `welcome` precedes any
            // `start`.
            Some(proc) => proc,
            None => return report("start arrived before welcome".into()),
        }
    };
    if graph_cache.as_ref().is_none_or(|(spec, _)| spec != &order.job.graph) {
        let spec = match GraphSpec::parse(&order.job.graph) {
            Ok(spec) => spec,
            Err(e) => return report(e),
        };
        let graph = match spec.load() {
            Ok(graph) => graph,
            Err(e) => return report(e),
        };
        *graph_cache = Some((order.job.graph.clone(), graph));
    }
    let graph = &graph_cache.as_ref().expect("cache just filled").1;
    let config = match order.job.config() {
        Ok(config) => config,
        Err(e) => return report(e),
    };
    let pattern = match psgl_service::parse_pattern_spec(&order.job.pattern) {
        Ok(pattern) => pattern,
        Err(e) => return report(e),
    };
    let shared = match PsglShared::prepare(graph, &pattern, &config) {
        Ok(shared) => shared,
        Err(e) => return report(e.to_string()),
    };

    // Build the attempt's data mesh: one outbound connection per peer,
    // opened with a hello naming this proc and the attempt.
    let inbound = registry.get(order.attempt);
    let mut writers = HashMap::new();
    for (proc, addr) in &order.peers {
        if *proc == my_proc {
            continue;
        }
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(e) => return report(format!("data connect to proc {proc} at {addr}: {e}")),
        };
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream);
        let hello = Frame::<Gpsi>::signal(FrameKind::Hello, order.attempt, my_proc);
        if let Err(e) = writer.write_all(&encode(&hello)).and_then(|()| writer.flush()) {
            return report(format!("data hello to proc {proc}: {e}"));
        }
        writers.insert(*proc, Mutex::new(writer));
    }

    let die = opts.die_at_superstep.filter(|_| order.attempt == 0);
    let exchange = TcpExchange::new(order, my_proc, writers, inbound, Arc::clone(control), die);
    let sink = WireShardSink { control: Arc::clone(control), attempt: order.attempt };
    let resume_shards = if order.resume.is_empty() {
        None
    } else {
        match order.resume.iter().map(|b| CheckpointShard::from_bytes(b)).collect() {
            Ok(shards) => Some(shards),
            Err(e) => return report(format!("bad resume shard: {e}")),
        }
    };
    let controls = RunControls {
        cancel: None,
        checkpoint: false,
        resume: None,
        cluster: Some(ClusterControls {
            exchange: &exchange,
            shard_sink: if order.job.checkpoint_interval > 0 {
                Some(&sink as &dyn ShardSink)
            } else {
                None
            },
            resume_shards,
        }),
    };
    match list_subgraphs_resumable(&shared, &config, &RunnerHooks::default(), controls) {
        Ok(ListingEnd::Complete(result)) => {
            let done = WorkerMsg::Done {
                attempt: order.attempt,
                expand: result.stats.expand,
                instances: result.instances,
                supersteps: result.stats.supersteps as u32,
                net: exchange.net_history(),
                pool_exhausted: result.stats.pool_exhausted,
                chunks_outstanding: result.stats.chunks_outstanding,
            };
            let _ = control.send(&done);
            AttemptEnd::Continue
        }
        // An aborted attempt (recovery, deadline, explicit cancel)
        // reports nothing — the coordinator already knows why.
        Ok(ListingEnd::Cancelled(_)) => AttemptEnd::Continue,
        Err(e) => {
            let message = e.to_string();
            if die.is_some() && message.contains("chaos") {
                AttemptEnd::Crashed
            } else {
                report(message)
            }
        }
    }
}

/// Streams checkpoint shards to the coordinator as the engine captures
/// them at superstep boundaries.
struct WireShardSink {
    control: Arc<ControlHandle>,
    attempt: u32,
}

impl ShardSink for WireShardSink {
    fn capture(&self, shards: Vec<CheckpointShard>) {
        for shard in shards {
            let msg = WorkerMsg::Shard {
                attempt: self.attempt,
                superstep: shard.superstep,
                partition: shard.partition,
                bytes: shard.to_bytes(),
            };
            // A failed send surfaces soon enough as a dead control
            // connection; the checkpoint just ends up incomplete, which
            // recovery already tolerates.
            let _ = self.control.send(&msg);
        }
    }
}

fn control_reader(stream: TcpStream, control: Arc<ControlHandle>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_json(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(json)) => {
                let Ok(msg) = CoordMsg::from_json(&json) else { continue };
                let mut shared = control.shared.lock().expect("control state lock poisoned");
                match msg {
                    CoordMsg::Welcome { proc } => shared.proc = Some(proc),
                    CoordMsg::Start { attempt, job, partitions, owners, peers, resume } => {
                        shared.starts.push_back(StartOrder {
                            attempt,
                            job,
                            partitions,
                            owners,
                            peers,
                            resume,
                        });
                    }
                    CoordMsg::Proceed { attempt, superstep, in_flight, checkpoint } => {
                        shared.proceeds.insert((attempt, superstep), (in_flight, checkpoint));
                    }
                    CoordMsg::Abort { attempt, reason } => {
                        shared.abort = Some((attempt, parse_cancel_reason(&reason)));
                    }
                    CoordMsg::Stop => {
                        shared.stopped = true;
                        return;
                    }
                }
            }
            Ok(None) | Err(_) => {
                control.shared.lock().expect("control state lock poisoned").dead = true;
                return;
            }
        }
    }
}

fn data_accept_loop(
    listener: TcpListener,
    registry: Arc<InboundRegistry>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || data_reader(stream, registry));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn data_reader(stream: TcpStream, registry: Arc<InboundRegistry>) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let (proc, attempt) = match read_frame::<Gpsi>(&mut reader) {
        Ok(Some((frame, _))) if frame.kind == FrameKind::Hello => (frame.src, frame.superstep),
        _ => return,
    };
    let inbound = registry.get(attempt);
    loop {
        match read_frame::<Gpsi>(&mut reader) {
            Ok(Some((frame, size))) => match frame.kind {
                FrameKind::Data => inbound.deliver(frame, size),
                FrameKind::EndOfStep => inbound.end_of_step(frame.src, frame.superstep, size),
                FrameKind::Hello => {}
            },
            // Either a mid-attempt death or the peer finishing the
            // attempt; if the run still needs this peer, the exchange's
            // barrier wait reports it and the coordinator recovers.
            Ok(None) | Err(_) => {
                inbound.peer_failed(proc);
                return;
            }
        }
    }
}
