//! Motif census: count all five paper patterns (PG1–PG5) in one graph.
//!
//! Network-motif analysis (Milo et al., Science 2002 — the paper's
//! motivating application) compares small-subgraph frequencies between a
//! real network and a degree-matched random one: motifs that are
//! over-represented reveal structure. This example runs the census on a
//! "social" power-law graph and an Erdős–Rényi control of the same size.
//!
//! ```bash
//! cargo run --release --example motif_census
//! ```

use psgl::baselines::centralized;
use psgl::core::{list_subgraphs, PsglConfig};
use psgl::graph::{generators, DataGraph};
use psgl::pattern::catalog;

fn census(name: &str, graph: &DataGraph) {
    println!("\n=== {name}: {} vertices, {} edges ===", graph.num_vertices(), graph.num_edges());
    println!("{:<22} {:>12} {:>10} {:>14}", "pattern", "instances", "supersteps", "gpsi generated");
    let config = PsglConfig::with_workers(4);
    for pattern in catalog::paper_patterns() {
        let result = list_subgraphs(graph, &pattern, &config).expect("listing succeeds");
        // Sanity: the centralized oracle must agree.
        debug_assert_eq!(result.instance_count, centralized::count(graph, &pattern));
        println!(
            "{:<22} {:>12} {:>10} {:>14}",
            pattern.to_string(),
            result.instance_count,
            result.stats.supersteps,
            result.stats.expand.generated,
        );
    }
}

fn main() {
    let n = 3_000;
    let avg_degree = 6.0;
    // A skewed "social" graph and a degree-matched ER control.
    let social = generators::chung_lu(n, avg_degree, 2.1, 7).expect("generator");
    let control = generators::erdos_renyi_gnm(n, social.num_edges(), 7).expect("generator");

    census("social network (power-law, γ≈2.1)", &social);
    census("random control (Erdős–Rényi)", &control);

    // The motif signature: skewed graphs pack far more triangles and
    // cliques than their random controls.
    let tri_social = centralized::count_triangles(&social);
    let tri_control = centralized::count_triangles(&control);
    println!(
        "\ntriangle over-representation: {tri_social} vs {tri_control} (×{:.1})",
        tri_social as f64 / tri_control.max(1) as f64
    );
}
