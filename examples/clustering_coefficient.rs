//! Clustering coefficient via parallel triangle listing.
//!
//! "Counting triangles helps compute the clustering coefficient of a social
//! network" (Section 1, citing Suri & Vassilvitskii's "last reducer"
//! paper). The global clustering coefficient is
//! `3·triangles / open-wedges`; this example computes it with PSgL (both
//! counts are subgraph-listing runs: the triangle and the 3-path) and
//! cross-checks with the centralized Chiba–Nishizeki lister.
//!
//! ```bash
//! cargo run --release --example clustering_coefficient
//! ```

use psgl::baselines::centralized;
use psgl::core::{list_subgraphs, PsglConfig};
use psgl::graph::generators;
use psgl::pattern::catalog;

fn main() {
    let config = PsglConfig::with_workers(4);
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "graph", "triangles", "wedges", "clustering", "check"
    );
    for (name, gamma) in [("tight community (γ=1.8)", 1.8), ("loose web (γ=2.8)", 2.8)] {
        let g = generators::chung_lu(4_000, 8.0, gamma, 99).expect("generator");
        let triangles = list_subgraphs(&g, &catalog::triangle(), &config)
            .expect("triangle listing")
            .instance_count;
        // Wedges = paths of 3 vertices (each triangle contains 3 of them).
        let wedges =
            list_subgraphs(&g, &catalog::path(3), &config).expect("wedge listing").instance_count;
        let clustering = if wedges == 0 { 0.0 } else { 3.0 * triangles as f64 / wedges as f64 };
        let check = centralized::count_triangles(&g);
        assert_eq!(check, triangles, "PSgL and Chiba–Nishizeki must agree");
        println!("{name:<28} {triangles:>10} {wedges:>12} {clustering:>12.5} {:>8}", "ok");
    }
    println!("\nskewed graphs concentrate wedges on hubs, lowering global clustering;");
    println!("both counts come from the same PSgL listing machinery.");
}
