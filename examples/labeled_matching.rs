//! Labeled subgraph matching: the property-graph generalization.
//!
//! Section 2 of the paper frames subgraph *matching* on labeled graphs as
//! the general problem, with listing the special case where every vertex
//! carries the same label. The extension keeps the whole PSgL machinery and
//! adds one pruning rule (candidates must carry the pattern vertex's label)
//! plus label-aware automorphism breaking.
//!
//! Scenario: a collaboration network where vertices are `0 = person`,
//! `1 = paper`, `2 = venue`; we look for "two co-authors with a paper at a
//! given venue" style motifs.
//!
//! ```bash
//! cargo run --release --example labeled_matching
//! ```

use psgl::core::{list_subgraphs, list_subgraphs_labeled, PsglConfig};
use psgl::graph::{generators, DataGraph};
use psgl::pattern::catalog;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PERSON: u16 = 0;
const PAPER: u16 = 1;
const VENUE: u16 = 2;

fn main() {
    // A power-law graph with randomly assigned entity types (60% people,
    // 30% papers, 10% venues) — a synthetic heterogeneous network.
    let g: DataGraph = generators::chung_lu(20_000, 6.0, 2.1, 11).expect("generator");
    let mut rng = SmallRng::seed_from_u64(7);
    let labels: Vec<u16> = (0..g.num_vertices())
        .map(|_| match rng.gen_range(0..10) {
            0..=5 => PERSON,
            6..=8 => PAPER,
            _ => VENUE,
        })
        .collect();
    let config = PsglConfig::with_workers(4);
    println!(
        "heterogeneous network: {} vertices, {} edges (60% person / 30% paper / 10% venue)\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!("{:<44} {:>12} {:>14}", "motif", "matches", "label pruned");
    let motifs: [(&str, psgl::pattern::Pattern, Vec<u16>); 4] = [
        ("co-authorship triangle (P-P-paper)", catalog::triangle(), vec![PERSON, PERSON, PAPER]),
        (
            "citation square (paper-paper-venue-venue)",
            catalog::square(),
            vec![PAPER, PAPER, VENUE, VENUE],
        ),
        (
            "venue hub (tailed triangle, venue tail)",
            catalog::tailed_triangle(),
            vec![PERSON, PERSON, PAPER, VENUE],
        ),
        ("all-person 4-clique", catalog::four_clique(), vec![PERSON; 4]),
    ];
    for (name, pattern, pattern_labels) in motifs {
        let result = list_subgraphs_labeled(&g, &pattern, labels.clone(), pattern_labels, &config)
            .expect("labeled listing");
        println!(
            "{name:<44} {:>12} {:>14}",
            result.instance_count, result.stats.expand.pruned_label
        );
    }
    // Sanity check printed for the skeptical reader: uniform labels must
    // reproduce the unlabeled count exactly.
    let unlabeled = list_subgraphs(&g, &catalog::triangle(), &config).unwrap().instance_count;
    let uniform = list_subgraphs_labeled(
        &g,
        &catalog::triangle(),
        vec![0; g.num_vertices()],
        vec![0; 3],
        &config,
    )
    .unwrap()
    .instance_count;
    assert_eq!(unlabeled, uniform);
    println!("\nuniform-label run matches the unlabeled count ({unlabeled} triangles): ok");
}
