//! Strategy tuning: how the distribution strategy changes load balance.
//!
//! Reproduces the *phenomenon* behind Figure 3/5 at example scale: on a
//! skewed graph, the square pattern keeps generating partial instances in
//! the middle supersteps, so the choice of which GRAY vertex expands each
//! Gpsi decides whether hub vertices pile work onto one worker. The
//! workload-aware strategy with α = 0.5 minimizes the slowest worker.
//!
//! ```bash
//! cargo run --release --example strategy_tuning
//! ```

use psgl::core::{list_subgraphs_prepared, PsglConfig, PsglShared, Strategy};
use psgl::graph::generators;
use psgl::pattern::catalog;

fn main() {
    // A WikiTalk-like extremely skewed graph.
    let g = generators::chung_lu(20_000, 6.0, 1.4, 5).expect("generator");
    let pattern = catalog::square();
    println!(
        "square pattern on a γ≈1.4 power-law graph ({} vertices, {} edges), 8 workers\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>11} {:>12}",
        "strategy", "makespan", "total cost", "imbalance", "slowest/med"
    );
    let base = PsglConfig::with_workers(8);
    let shared = PsglShared::prepare(&g, &pattern, &base).expect("prepare");
    let mut reference = None;
    for (name, strategy) in Strategy::paper_variants() {
        let config = base.clone().strategy(strategy);
        let r = list_subgraphs_prepared(&shared, &config).expect("listing succeeds");
        match reference {
            None => reference = Some(r.instance_count),
            Some(c) => assert_eq!(c, r.instance_count, "all strategies must agree"),
        }
        let mut loads = r.stats.per_worker_cost.clone();
        loads.sort_unstable();
        let median = loads[loads.len() / 2].max(1);
        println!(
            "{:<10} {:>12} {:>14} {:>11.3} {:>12.2}",
            name,
            r.stats.simulated_makespan,
            r.stats.expand.cost,
            r.stats.cost_imbalance,
            *loads.last().unwrap() as f64 / median as f64,
        );
    }
    println!("\ninstances found by every strategy: {}", reference.unwrap());
    println!("lower makespan and imbalance ≈ the paper's (WA,0.5) result in Figures 3 and 5.");
}
