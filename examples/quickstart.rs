//! Quickstart: list triangles in a power-law graph with PSgL.
//!
//! ```bash
//! cargo run --release --example quickstart [path/to/edge_list.txt]
//! ```
//!
//! Without an argument a synthetic power-law graph is generated; with one,
//! a SNAP-format edge list (e.g. a real WebGoogle download) is loaded.

use psgl::core::{list_subgraphs, PsglConfig};
use psgl::graph::{generators, io, DegreeStats};
use psgl::pattern::catalog;

fn main() {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading edge list from {path} ...");
            io::load_edge_list(&path).expect("readable SNAP-format edge list")
        }
        None => {
            println!("generating a WebGoogle-like power-law graph (γ ≈ 1.7) ...");
            generators::chung_lu(50_000, 10.0, 1.7, 42).expect("valid generator parameters")
        }
    };
    let stats = DegreeStats::of_graph(&graph);
    println!(
        "graph: {} vertices, {} edges, max degree {}, γ ≈ {}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.max,
        stats.gamma.map_or("n/a".into(), |g| format!("{g:.2}")),
    );

    // PSgL with the paper's best defaults: workload-aware (α = 0.5)
    // distribution, bloom edge index, automatic initial-vertex selection.
    let config = PsglConfig::with_workers(8);
    let triangle = catalog::triangle();
    let result = list_subgraphs(&graph, &triangle, &config).expect("listing succeeds");

    println!("\n== {} ==", triangle);
    println!("instances            : {}", result.instance_count);
    println!("supersteps           : {}", result.stats.supersteps);
    println!("gpsis expanded       : {}", result.stats.expand.expanded);
    println!("gpsis generated      : {}", result.stats.expand.generated);
    println!("candidates pruned    : {}", result.stats.expand.total_pruned());
    println!("messages exchanged   : {}", result.stats.messages);
    println!("simulated makespan   : {} cost units", result.stats.simulated_makespan);
    println!("worker cost imbalance: {:.3} (1.0 = perfect)", result.stats.cost_imbalance);
    println!("wall time            : {:.1?}", result.stats.wall_time);
    println!("initial vertex       : v{} ({:?})", result.init_vertex + 1, result.selection_rule);
}
