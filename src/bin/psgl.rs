//! `psgl` — command-line interface to the subgraph-listing toolkit.
//!
//! ```text
//! psgl count    --graph g.txt --pattern square [--workers 8] [--strategy wa:0.5]
//!               [--init-vertex 1] [--no-index] [--per-vertex] [--seed 42]
//! psgl stats    --graph g.txt
//! psgl generate --out g.txt --model chung-lu --vertices 100000 --avg-degree 8 --gamma 2.1
//! psgl patterns
//! ```
//!
//! `--graph` reads a SNAP-format edge list; `--pattern` accepts a catalog
//! name (`triangle`, `square`, `tailed-triangle`, `4-clique`, `house`,
//! `cycle:K`, `clique:K`, `path:K`, `star:K`) or explicit 1-based edges
//! (`"1-2,2-3,3-1"`).

use psgl::baselines::centralized;
use psgl::cluster::{run_cluster, run_worker, ClusterConfig, GraphSpec, JobSpec, WorkerOptions};
use psgl::core::{
    count_per_vertex, list_subgraphs_prepared_with, PsglConfig, PsglShared, RunnerHooks,
    SpillConfig,
};
use psgl::graph::{algo, generators, io, DataGraph, DegreeStats};
use psgl::pattern::{break_automorphisms, catalog};
use psgl::service::{self, GraphFormat, Json, QueryDefaults, ServiceConfig};
use std::collections::HashMap;
use std::process::ExitCode;

// The pattern/strategy mini-language is owned by the service crate so the
// CLI and the wire protocol accept exactly the same specs.
use psgl::service::{parse_pattern_spec as parse_pattern, parse_strategy_spec as parse_strategy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "count" => cmd_count(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "patterns" => cmd_patterns(),
        "serve" => cmd_serve(&args[1..]),
        "mutate" => cmd_mutate(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "cluster" => cmd_cluster(&args[1..]),
        "obs" => cmd_obs(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
psgl — parallel subgraph listing (PSgL, SIGMOD 2014)

USAGE:
  psgl count    --graph FILE --pattern P [--workers N] [--strategy S]
                [--init-vertex V] [--no-index] [--no-break] [--per-vertex]
                [--seed N] [--verify] [--max-live-chunks N]
                [--chunk-capacity N] [--spill] [--spill-dir DIR]
  psgl stats    --graph FILE
  psgl generate --out FILE --model MODEL --vertices N
                [--avg-degree D] [--gamma G] [--edges M] [--seed N]
  psgl patterns
  psgl serve    [--addr HOST:PORT] [--pool N] [--queue-cap N]
                [--result-cache N] [--plan-cache N] [--workers N]
                [--budget N] [--chunk N] [--slice N] [--max-live-chunks N]
                [--chunk-capacity N] [--spill] [--spill-dir DIR]
  psgl mutate   --addr HOST:PORT --name GRAPH [--insert \"0-1,2-3\"]
                [--delete \"4-5\"]
  psgl watch    --addr HOST:PORT --name GRAPH --pattern P [--events N]
  psgl cluster coordinator --workers N --graph SPEC --pattern P
                [--partitions K] [--strategy S] [--seed N] [--collect]
                [--checkpoint-interval C] [--max-supersteps M]
                [--listen HOST:PORT] [--heartbeat-ms MS] [--deadline-ms MS]
  psgl cluster worker --join HOST:PORT
  psgl obs scrape  --addr HOST:PORT [--format prometheus]
  psgl obs dump    [--out FILE]

PATTERNS: triangle | square | tailed-triangle | 4-clique | house
          | cycle:K | clique:K | path:K | star:K | \"1-2,2-3,3-1\"
STRATEGY: random | roulette | wa:ALPHA            (default wa:0.5)
MODEL:    chung-lu | erdos-renyi | barabasi-albert
FORMAT:   edge-list | binary | fixture             (--format, default edge-list)
SPEC:     gnm:N:M:SEED | chung-lu:N:AVG:GAMMA:SEED | fixture:NAME
          | file:PATH[:FORMAT]                     (cluster graph spec)

serve speaks a JSON-lines protocol over TCP; see README \"Running as a
service\" (verbs: load, mutate, count, list, subscribe, cancel, stats,
metrics, health, shutdown). mutate applies an edge batch to a live
graph; watch subscribes and prints each signed instance delta as it
lands. cluster runs one coordinator and N worker processes; the
coordinator prints a JSON result line when the job completes (README
\"Running a cluster\"); --linger-ms keeps its control port up after the
job so `psgl obs scrape` can collect the final metrics.
obs scrape sends one `metrics` request to a service or coordinator
control port and prints the reply (with --format prometheus, the raw
exposition text). obs dump writes this process's flight-recorder ring
as JSON to stdout or --out FILE (see README \"Operating the service\").
--spill enables the disk spill tier (system temp dir, or --spill-dir);
--max-live-chunks caps resident message chunks and evicts the excess to
it — see README \"Graphs larger than RAM\".";

/// Parses `--key value` pairs (plus boolean flags) into a map.
fn parse_flags(args: &[String], booleans: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key:?}"));
        };
        if booleans.contains(&name) {
            map.insert(name.to_string(), "true".to_string());
        } else {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
    }
    Ok(map)
}

fn required<'m>(flags: &'m HashMap<String, String>, name: &str) -> Result<&'m str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("--{name} is required"))
}

/// Loads `--graph` in `--format` (default edge-list) through the same
/// loader — and therefore the same error type — as the service's `load`
/// verb, so a missing or malformed file is a diagnostic, not a panic.
fn load_graph(flags: &HashMap<String, String>) -> Result<DataGraph, String> {
    let path = required(flags, "graph")?;
    let format = match flags.get("format") {
        Some(f) => GraphFormat::parse(f)?,
        None => GraphFormat::EdgeList,
    };
    service::load_graph(path, format).map_err(|e| e.to_string())
}

/// The (`max_live_chunks`, `chunk_capacity`, spill tier) triple shared
/// by `count` and `serve`.
type SpillKnobs = (Option<u64>, Option<usize>, Option<SpillConfig>);

/// Parses the shared memory-bounding knobs (`--max-live-chunks`,
/// `--chunk-capacity`, `--spill`, `--spill-dir`) used by both `count` and
/// `serve`; see README "Graphs larger than RAM".
fn parse_spill_knobs(flags: &HashMap<String, String>) -> Result<SpillKnobs, String> {
    let max_live_chunks = flags
        .get("max-live-chunks")
        .map(|s| s.parse().map_err(|e| format!("bad --max-live-chunks: {e}")))
        .transpose()?;
    let chunk_capacity = flags
        .get("chunk-capacity")
        .map(|s| s.parse().map_err(|e| format!("bad --chunk-capacity: {e}")))
        .transpose()?;
    let spill = if flags.contains_key("spill") || flags.contains_key("spill-dir") {
        Some(SpillConfig {
            dir: flags.get("spill-dir").map(std::path::PathBuf::from),
            ..SpillConfig::in_temp()
        })
    } else {
        None
    };
    if max_live_chunks.is_some() && spill.is_none() {
        return Err("--max-live-chunks needs a spill tier: add --spill [--spill-dir DIR]".into());
    }
    Ok((max_live_chunks, chunk_capacity, spill))
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["no-index", "no-break", "per-vertex", "verify", "spill"])?;
    let graph = load_graph(&flags)?;
    let pattern = parse_pattern(required(&flags, "pattern")?)?;
    let mut config = PsglConfig::default();
    if let Some(w) = flags.get("workers") {
        config.workers = w.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(s) = flags.get("strategy") {
        config.strategy = parse_strategy(s)?;
    }
    if let Some(v) = flags.get("init-vertex") {
        let v: u8 = v.parse().map_err(|e| format!("bad --init-vertex: {e}"))?;
        if v == 0 {
            return Err("--init-vertex is 1-based".into());
        }
        config.init_vertex = Some(v - 1);
    }
    if let Some(s) = flags.get("seed") {
        config.seed = s.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    config.use_edge_index = !flags.contains_key("no-index");
    config.break_automorphisms = !flags.contains_key("no-break");
    let (max_live_chunks, chunk_capacity, spill) = parse_spill_knobs(&flags)?;
    println!(
        "graph: {} vertices, {} edges; pattern: {pattern}; {} workers",
        graph.num_vertices(),
        graph.num_edges(),
        config.workers
    );
    if flags.contains_key("per-vertex") {
        if spill.is_some() || chunk_capacity.is_some() {
            return Err("--per-vertex does not take the memory-bounding knobs".into());
        }
        let (counts, result) =
            count_per_vertex(&graph, &pattern, &config).map_err(|e| e.to_string())?;
        println!("instances: {}", result.instance_count);
        println!("vertex\tcount");
        for (v, c) in counts.iter().enumerate().filter(|(_, &c)| c > 0) {
            println!("{v}\t{c}");
        }
        return Ok(());
    }
    let hooks = RunnerHooks { max_live_chunks, chunk_capacity, spill, ..RunnerHooks::default() };
    let shared = PsglShared::prepare(&graph, &pattern, &config).map_err(|e| e.to_string())?;
    let result =
        list_subgraphs_prepared_with(&shared, &config, &hooks).map_err(|e| e.to_string())?;
    println!("instances          : {}", result.instance_count);
    println!("supersteps         : {}", result.stats.supersteps);
    println!("gpsis generated    : {}", result.stats.expand.generated);
    println!("pruned candidates  : {}", result.stats.expand.total_pruned());
    println!("simulated makespan : {} cost units", result.stats.simulated_makespan);
    println!("cost imbalance     : {:.3}", result.stats.cost_imbalance);
    println!("wall time          : {:.1?}", result.stats.wall_time);
    println!("initial vertex     : v{} ({:?})", result.init_vertex + 1, result.selection_rule);
    if result.stats.spill_chunks > 0 {
        println!(
            "spilled to disk    : {} chunk(s), {} bytes, {} re-admitted (peak {} chunks live)",
            result.stats.spill_chunks,
            result.stats.spill_bytes,
            result.stats.readmitted_chunks,
            result.stats.chunks_live_peak
        );
    }
    if flags.contains_key("verify") {
        let expected = centralized::count(&graph, &pattern);
        if expected == result.instance_count {
            println!("verify             : OK (centralized oracle agrees)");
        } else {
            return Err(format!(
                "verification failed: oracle counts {expected}, PSgL counted {}",
                result.instance_count
            ));
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let graph = load_graph(&flags)?;
    let stats = DegreeStats::of_graph(&graph);
    let (_, components) = algo::connected_components(&graph);
    let (_, degeneracy) = algo::core_decomposition(&graph);
    let triangles = centralized::count_triangles(&graph);
    println!("vertices              : {}", graph.num_vertices());
    println!("edges                 : {}", graph.num_edges());
    println!("max degree            : {}", stats.max);
    println!("mean degree           : {:.2}", stats.mean);
    println!("power-law exponent γ̂ : {}", stats.gamma.map_or("n/a".into(), |g| format!("{g:.2}")));
    println!("connected components  : {components}");
    println!("degeneracy            : {degeneracy}");
    println!("triangles             : {triangles}");
    println!(
        "global clustering     : {:.5}",
        algo::global_clustering_coefficient(&graph, triangles)
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let out = required(&flags, "out")?;
    let model = required(&flags, "model")?;
    let n: usize =
        required(&flags, "vertices")?.parse().map_err(|e| format!("bad --vertices: {e}"))?;
    let seed: u64 =
        flags.get("seed").map_or(Ok(42), |s| s.parse()).map_err(|e| format!("bad --seed: {e}"))?;
    let graph = match model {
        "chung-lu" => {
            let avg: f64 = flags
                .get("avg-degree")
                .map_or(Ok(8.0), |s| s.parse())
                .map_err(|e| format!("bad --avg-degree: {e}"))?;
            let gamma: f64 = flags
                .get("gamma")
                .map_or(Ok(2.2), |s| s.parse())
                .map_err(|e| format!("bad --gamma: {e}"))?;
            generators::chung_lu(n, avg, gamma, seed).map_err(|e| e.to_string())?
        }
        "erdos-renyi" => {
            let m: u64 = flags
                .get("edges")
                .ok_or("--edges is required for erdos-renyi")?
                .parse()
                .map_err(|e| format!("bad --edges: {e}"))?;
            generators::erdos_renyi_gnm(n, m, seed).map_err(|e| e.to_string())?
        }
        "barabasi-albert" => {
            let m: usize = flags
                .get("avg-degree")
                .map_or(Ok(4.0), |s| s.parse())
                .map_err(|e| format!("bad --avg-degree: {e}"))? as usize
                / 2;
            generators::barabasi_albert(n, m.max(1), seed).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    io::save_edge_list(&graph, out).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());
    Ok(())
}

fn cmd_patterns() -> Result<(), String> {
    println!(
        "{:<22} {:>8} {:>6} {:>6}  partial order (automorphism breaking)",
        "pattern", "vertices", "edges", "|Aut|"
    );
    for p in catalog::paper_patterns() {
        let order = break_automorphisms(&p);
        let constraints: Vec<String> =
            order.constraints().iter().map(|&(a, b)| format!("v{}<v{}", a + 1, b + 1)).collect();
        let aut = psgl::pattern::automorphism::automorphisms(&p).len();
        println!(
            "{:<22} {:>8} {:>6} {:>6}  {}",
            p.to_string(),
            p.num_vertices(),
            p.num_edges(),
            aut,
            constraints.join(", ")
        );
    }
    Ok(())
}

fn opt_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flags.get(name).map_or(Ok(default), |s| s.parse().map_err(|e| format!("bad --{name}: {e}")))
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("coordinator") => cmd_cluster_coordinator(&args[1..]),
        Some("worker") => cmd_cluster_worker(&args[1..]),
        Some(other) => Err(format!("unknown cluster role {other:?} (coordinator | worker)")),
        None => Err("cluster needs a role: coordinator | worker".into()),
    }
}

fn cmd_cluster_coordinator(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["collect"])?;
    let workers: usize =
        required(&flags, "workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let job = JobSpec {
        graph: required(&flags, "graph")?.to_string(),
        pattern: required(&flags, "pattern")?.to_string(),
        strategy: flags.get("strategy").cloned().unwrap_or_else(|| "wa:0.5".into()),
        partitions: opt_parse(&flags, "partitions", workers * 2)?,
        seed: opt_parse(&flags, "seed", 42)?,
        collect_instances: flags.contains_key("collect"),
        checkpoint_interval: opt_parse(&flags, "checkpoint-interval", 0)?,
        max_supersteps: opt_parse(&flags, "max-supersteps", 64)?,
    };
    // Fail on a bad spec here, before any worker joins, rather than
    // shipping it to every worker and collecting N error reports.
    GraphSpec::parse(&job.graph)?;
    parse_pattern(&job.pattern)?;
    job.config()?;
    let listen = flags.get("listen").map_or("127.0.0.1:7878", String::as_str);
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let mut config = ClusterConfig::new(workers, job);
    if let Some(ms) = flags.get("heartbeat-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --heartbeat-ms: {e}"))?;
        config.heartbeat_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
        config.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = flags.get("linger-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --linger-ms: {e}"))?;
        config.linger = std::time::Duration::from_millis(ms);
    }
    eprintln!(
        "psgl-cluster coordinator on {addr}: waiting for {workers} workers \
         (psgl cluster worker --join {addr})"
    );
    let outcome = run_cluster(listener, config).map_err(|e| e.to_string())?;
    let stats = &outcome.stats;
    println!(
        "{}",
        Json::obj([
            ("instances", Json::from(outcome.instance_count)),
            ("attempts", Json::from(outcome.attempts)),
            ("workers_lost", Json::from(outcome.workers_lost)),
            ("supersteps", Json::from(stats.supersteps)),
            ("messages", Json::from(stats.messages)),
            ("frames_sent", Json::from(stats.frames_sent)),
            ("wire_bytes_sent", Json::from(stats.wire_bytes_sent)),
            ("barrier_wait_nanos", Json::from(stats.barrier_wait_nanos)),
            ("wall_ms", Json::from(stats.wall_time.as_millis() as u64)),
        ])
    );
    Ok(())
}

fn cmd_cluster_worker(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let join = required(&flags, "join")?;
    run_worker(join, WorkerOptions::default())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["spill"])?;
    let mut config = ServiceConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    config.pool = opt_parse(&flags, "pool", config.pool)?.max(1);
    config.queue_cap = opt_parse(&flags, "queue-cap", config.queue_cap)?;
    config.result_cache_cap = opt_parse(&flags, "result-cache", config.result_cache_cap)?;
    config.plan_cache_cap = opt_parse(&flags, "plan-cache", config.plan_cache_cap)?;
    config.list_chunk = opt_parse(&flags, "chunk", config.list_chunk)?.max(1);
    config.slice_supersteps = opt_parse(&flags, "slice", config.slice_supersteps)?.max(1);
    let (max_live_chunks, chunk_capacity, spill) = parse_spill_knobs(&flags)?;
    config.defaults = QueryDefaults {
        workers: opt_parse(&flags, "workers", QueryDefaults::default().workers)?.max(1),
        budget: flags
            .get("budget")
            .map(|s| s.parse().map_err(|e| format!("bad --budget: {e}")))
            .transpose()?,
        seed: opt_parse(&flags, "seed", QueryDefaults::default().seed)?,
        max_live_chunks,
        chunk_capacity,
        spill,
        slow_query_ms: opt_parse(&flags, "slow-query-ms", QueryDefaults::default().slow_query_ms)?,
    };
    let handle =
        service::serve(config.clone()).map_err(|e| format!("bind {}: {e}", config.addr))?;
    println!(
        "psgl-service listening on {} (pool {}, queue {}, result cache {}, plan cache {})",
        handle.addr(),
        config.pool,
        config.queue_cap,
        config.result_cache_cap,
        config.plan_cache_cap
    );
    println!(
        "protocol: JSON lines; verbs: load, mutate, count, list, subscribe, cancel, stats, \
         metrics, health, shutdown"
    );
    if config.defaults.spill.is_some() {
        println!(
            "spill tier enabled: queue-full and over-budget queries degrade to \
             memory-bounded runs instead of `overloaded`"
        );
    }
    handle.wait();
    println!("psgl-service stopped");
    Ok(())
}

/// `psgl obs`: observability utilities — scrape the metrics verb off a
/// running service or lingering cluster coordinator, or dump this
/// process's flight-recorder ring.
fn cmd_obs(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("scrape") => cmd_obs_scrape(&args[1..]),
        Some("dump") => cmd_obs_dump(&args[1..]),
        Some(other) => Err(format!("unknown obs action {other:?} (scrape | dump)")),
        None => Err("obs needs an action: scrape | dump".into()),
    }
}

/// Sends one `{"verb":"metrics"}` line to `--addr` and prints the reply.
/// Both the service port and the cluster coordinator's control port
/// answer it; `--format prometheus` prints the exposition text itself
/// (the `body` field) instead of the JSON envelope.
fn cmd_obs_scrape(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?;
    let prometheus = match flags.get("format").map(String::as_str) {
        None | Some("json") => false,
        Some("prometheus") => true,
        Some(other) => return Err(format!("bad --format {other:?} (json | prometheus)")),
    };
    let mut request = vec![("verb", Json::from("metrics"))];
    if prometheus {
        request.push(("format", Json::from("prometheus")));
    }
    let mut client = service::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reply = client.request(&Json::obj(request)).map_err(|e| e.to_string())?;
    if prometheus {
        match reply.get("body").and_then(Json::as_str) {
            Some(body) => print!("{body}"),
            None => return Err(format!("no prometheus body in reply: {reply}")),
        }
    } else {
        println!("{reply}");
    }
    Ok(())
}

/// Dumps the process-global flight-recorder ring as one JSON document.
/// In a fresh CLI process the ring is empty; the command exists so
/// embedders (and the chaos harness, which dumps through the same code
/// path on invariant failure) have a uniform on-disk format to grep.
fn cmd_obs_dump(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let recorder = psgl::obs::tracer().recorder();
    match flags.get("out") {
        Some(path) => {
            let path = std::path::Path::new(path);
            recorder.dump_to_file(path).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("flight recorder dumped to {}", path.display());
        }
        None => println!("{}", recorder.to_json()),
    }
    Ok(())
}

/// Parses `"0-1,2-3"` into `(u, v)` pairs for the mutate verb's edge
/// lists (0-based vertex ids, unlike the 1-based pattern mini-language).
fn parse_edge_pairs(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    if spec.trim().is_empty() {
        return Ok(Vec::new());
    }
    spec.split(',')
        .map(|edge| {
            let (u, v) = edge
                .trim()
                .split_once('-')
                .ok_or_else(|| format!("bad edge {edge:?}: expected U-V"))?;
            let parse =
                |s: &str| s.trim().parse::<u32>().map_err(|e| format!("bad edge {edge:?}: {e}"));
            Ok((parse(u)?, parse(v)?))
        })
        .collect()
}

/// `psgl mutate`: applies one edge batch to a graph on a running service
/// and prints the server's response line (new epoch + version chain).
fn cmd_mutate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?;
    let name = required(&flags, "name")?;
    let insert = parse_edge_pairs(flags.get("insert").map_or("", String::as_str))?;
    let delete = parse_edge_pairs(flags.get("delete").map_or("", String::as_str))?;
    if insert.is_empty() && delete.is_empty() {
        return Err("--insert or --delete is required".to_string());
    }
    let mut client = service::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client.mutate(name, &insert, &delete).map_err(|e| e.to_string())?;
    println!("{response}");
    Ok(())
}

/// `psgl watch`: subscribes to `(graph, pattern)` on a running service
/// and prints each delta/resync event line as mutations land. Stops
/// after `--events N` lines (default: runs until the server goes away).
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &[])?;
    let addr = required(&flags, "addr")?;
    let name = required(&flags, "name")?;
    let pattern = required(&flags, "pattern")?;
    let events = flags
        .get("events")
        .map(|s| s.parse::<u64>().map_err(|e| format!("bad --events: {e}")))
        .transpose()?;
    let mut client = service::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let ack = client.subscribe(name, pattern).map_err(|e| e.to_string())?;
    println!("{ack}");
    let mut seen = 0u64;
    while events.is_none_or(|n| seen < n) {
        println!("{}", client.next_event().map_err(|e| e.to_string())?);
        seen += 1;
    }
    Ok(())
}
