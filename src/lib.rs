#![warn(missing_docs)]

//! # PSgL — Parallel Subgraph Listing
//!
//! Facade crate re-exporting the full PSgL toolkit, a from-scratch Rust
//! reproduction of *"Parallel Subgraph Listing in a Large-Scale Graph"*
//! (Shao et al., SIGMOD 2014).
//!
//! The individual crates:
//!
//! - [`graph`] — data-graph substrate (CSR storage, degree ordering,
//!   generators, loaders, partitioning),
//! - [`pattern`] — pattern graphs, automorphism breaking, partial orders,
//! - [`bsp`] — a Bulk Synchronous Parallel vertex-centric engine
//!   (the Pregel/Giraph substrate PSgL runs on),
//! - [`core`] — the PSgL framework itself (expansion, distribution
//!   strategies, initial-vertex selection, bloom edge index),
//! - [`mapreduce`] — an in-memory MapReduce engine used by the baselines,
//! - [`baselines`] — the systems the paper compares against (Afrati
//!   multiway join, SGIA-MR, one-hop index engine, centralized oracle),
//! - [`service`] — a long-running query service (`psgl serve`): graph
//!   catalog, plan/result caches, admission control, JSON-lines TCP
//!   protocol,
//! - [`cluster`] — a distributed multi-process BSP runtime (`psgl
//!   cluster`): binary wire plane over TCP, coordinator-driven
//!   membership and barriers, checkpoint-based recovery,
//! - [`obs`] — observability substrate shared by every layer: metrics
//!   registry, structured tracing, flight recorder, slow-query log,
//! - [`sim`] — deterministic simulation & chaos harness: seeded
//!   virtual-time scheduler for the BSP engine, fault injection, invariant
//!   checkers, and oracle conformance sweeps,
//! - [`delta`] — incremental subgraph listing over dynamic graphs: epoch
//!   overlays on the CSR base, delta-restricted seeded expansion, signed
//!   instance deltas.
//!
//! ## Quickstart
//!
//! ```
//! use psgl::core::{list_subgraphs, PsglConfig};
//! use psgl::graph::generators;
//! use psgl::pattern::catalog;
//!
//! // A small power-law data graph and the triangle pattern.
//! let g = generators::chung_lu(1_000, 4.0, 2.2, 7).unwrap();
//! let triangle = catalog::triangle();
//! let result = list_subgraphs(&g, &triangle, &PsglConfig::default()).unwrap();
//! assert_eq!(result.instance_count, psgl::baselines::centralized::count(&g, &triangle));
//! ```

pub use psgl_baselines as baselines;
pub use psgl_bsp as bsp;
pub use psgl_cluster as cluster;
pub use psgl_core as core;
pub use psgl_delta as delta;
pub use psgl_graph as graph;
pub use psgl_mapreduce as mapreduce;
pub use psgl_obs as obs;
pub use psgl_pattern as pattern;
pub use psgl_service as service;
pub use psgl_sim as sim;
